(* Tests for the cache simulator, hierarchy, machines, and cost model. *)

open Vc_mem

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let small_cache () =
  (* 4 sets x 2 ways x 64B lines = 512 B *)
  Cache.create { Cache.size_bytes = 512; ways = 2; line_bytes = 64 }

let test_cache_config_errors () =
  Alcotest.check_raises "zero size" (Invalid_argument "Cache.create: sizes must be positive")
    (fun () -> ignore (Cache.create { Cache.size_bytes = 0; ways = 1; line_bytes = 64 }));
  Alcotest.check_raises "non-pow2 sets"
    (Invalid_argument "Cache.create: set count 3 not a power of two") (fun () ->
      ignore (Cache.create { Cache.size_bytes = 3 * 64; ways = 1; line_bytes = 64 }))

let test_cache_hits_and_misses () =
  let c = small_cache () in
  check_bool "cold miss" false (Cache.access c ~addr:0);
  check_bool "warm hit" true (Cache.access c ~addr:0);
  check_bool "same line hit" true (Cache.access c ~addr:63);
  check_bool "next line miss" false (Cache.access c ~addr:64);
  check_int "accesses" 4 (Cache.accesses c);
  check_int "misses" 2 (Cache.misses c);
  Alcotest.(check (float 1e-9)) "miss rate" 0.5 (Cache.miss_rate c)

let test_cache_lru_eviction () =
  let c = small_cache () in
  (* set stride = 4 sets * 64 = 256B; these three lines map to set 0 *)
  ignore (Cache.access c ~addr:0);
  ignore (Cache.access c ~addr:256);
  ignore (Cache.access c ~addr:0);
  (* touch 0 again: 256 is now LRU *)
  ignore (Cache.access c ~addr:512);
  (* evicts 256 *)
  check_bool "0 still resident" true (Cache.access c ~addr:0);
  check_bool "256 evicted" false (Cache.access c ~addr:256)

let test_cache_working_set_cliff () =
  (* a working set that fits is all hits on the second pass; one that
     doesn't fit (streaming LRU) keeps missing - the Fig. 11 cliff *)
  let run lines =
    let c = small_cache () in
    for pass = 1 to 2 do
      ignore pass;
      for i = 0 to lines - 1 do
        ignore (Cache.access c ~addr:(i * 64))
      done
    done;
    Cache.miss_rate c
  in
  Alcotest.(check (float 1e-9)) "fits: second pass all hits" 0.5 (run 4);
  check_bool "thrash: high miss rate" true (run 16 > 0.9)

let test_cache_access_range () =
  let c = small_cache () in
  check_int "spans two lines" 2 (Cache.access_range c ~addr:60 ~bytes:8);
  check_int "now hits" 0 (Cache.access_range c ~addr:60 ~bytes:8);
  check_int "zero bytes still touches" 0 (Cache.access_range c ~addr:60 ~bytes:0)

let test_cache_reset_clear () =
  let c = small_cache () in
  ignore (Cache.access c ~addr:0);
  Cache.reset_counters c;
  check_int "counters zero" 0 (Cache.accesses c);
  check_bool "contents kept" true (Cache.access c ~addr:0);
  Cache.clear c;
  check_bool "contents gone" false (Cache.access c ~addr:0);
  check_int "resident after one" 1 (Cache.resident_lines c)

let test_hierarchy_routing () =
  let h =
    Hierarchy.create
      [
        { Hierarchy.label = "L1"; cache = small_cache (); miss_penalty = 10.0 };
        {
          Hierarchy.label = "L2";
          cache = Cache.create { Cache.size_bytes = 4096; ways = 4; line_bytes = 64 };
          miss_penalty = 100.0;
        };
      ]
  in
  Hierarchy.access h ~addr:0 ~bytes:4;
  (* cold: misses both levels *)
  Alcotest.(check (float 1e-9)) "cold penalty" 110.0 (Hierarchy.penalty_cycles h);
  Hierarchy.access h ~addr:0 ~bytes:4;
  Alcotest.(check (float 1e-9)) "hit adds nothing" 110.0 (Hierarchy.penalty_cycles h);
  (match Hierarchy.level_stats h with
  | [ ("L1", 2, 1); ("L2", 1, 1) ] -> ()
  | _ -> Alcotest.fail "unexpected level stats");
  (* evict line 0 from L1 (it stays in the larger L2) *)
  for i = 1 to 8 do
    Hierarchy.access h ~addr:(i * 256) ~bytes:4
  done;
  let before = Hierarchy.penalty_cycles h in
  Hierarchy.access h ~addr:0 ~bytes:4;
  Alcotest.(check (float 1e-9)) "L1 miss, L2 hit" (before +. 10.0)
    (Hierarchy.penalty_cycles h)

let test_hierarchy_miss_rate_lookup () =
  let h = Hierarchy.xeon_e5 () in
  Hierarchy.access h ~addr:0 ~bytes:4;
  Alcotest.(check (float 1e-9)) "L1d rate" 1.0 (Hierarchy.miss_rate h "L1d");
  Alcotest.check_raises "unknown label" Not_found (fun () ->
      ignore (Hierarchy.miss_rate h "L7"))

let test_presets () =
  let e5 = Hierarchy.xeon_e5 () in
  (match Hierarchy.levels e5 with
  | [ l1; llc ] ->
      check_int "E5 L1 32KB" (32 * 1024) (Cache.config l1.Hierarchy.cache).Cache.size_bytes;
      check_int "E5 LLC 20MB" (20 * 1024 * 1024)
        (Cache.config llc.Hierarchy.cache).Cache.size_bytes
  | _ -> Alcotest.fail "E5 has two levels");
  let phi = Hierarchy.xeon_phi () in
  match Hierarchy.levels phi with
  | [ _; l2 ] ->
      check_int "Phi L2 512KB" (512 * 1024) (Cache.config l2.Hierarchy.cache).Cache.size_bytes
  | _ -> Alcotest.fail "Phi has two levels"

let test_machines () =
  Alcotest.(check string) "find e5" "e5" (Machine.find "e5").Machine.name;
  Alcotest.(check string) "find phi" "phi" (Machine.find "phi").Machine.name;
  Alcotest.check_raises "unknown" Not_found (fun () -> ignore (Machine.find "m1"));
  check_bool "phi limit below e5" true
    (Machine.xeon_phi.Machine.max_live_threads < Machine.xeon_e5.Machine.max_live_threads)

let test_cost () =
  let vm = Vc_simd.Vm.create Vc_simd.Isa.sse42 in
  let h = Hierarchy.xeon_e5 () in
  Vc_simd.Vm.scalar_ops vm 100;
  Hierarchy.access h ~addr:0 ~bytes:4;
  (* cold: 10 + 150 penalty *)
  Alcotest.(check (float 1e-9)) "cycles" 260.0 (Cost.cycles vm h);
  Alcotest.(check (float 1e-9)) "cpi" 2.6 (Cost.cpi vm h);
  Alcotest.(check (float 1e-9)) "speedup" 2.0
    (Cost.speedup ~baseline_cycles:520.0 ~cycles:260.0);
  Alcotest.(check (float 1e-9)) "guarded" 0.0 (Cost.speedup ~baseline_cycles:1.0 ~cycles:0.0)

let () =
  Alcotest.run "vc_mem"
    [
      ( "cache",
        [
          Alcotest.test_case "config errors" `Quick test_cache_config_errors;
          Alcotest.test_case "hits and misses" `Quick test_cache_hits_and_misses;
          Alcotest.test_case "LRU eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "working-set cliff" `Quick test_cache_working_set_cliff;
          Alcotest.test_case "access range" `Quick test_cache_access_range;
          Alcotest.test_case "reset/clear" `Quick test_cache_reset_clear;
        ] );
      ( "hierarchy",
        [
          Alcotest.test_case "routing" `Quick test_hierarchy_routing;
          Alcotest.test_case "miss-rate lookup" `Quick test_hierarchy_miss_rate_lookup;
          Alcotest.test_case "presets" `Quick test_presets;
        ] );
      ("machine", [ Alcotest.test_case "lookup and limits" `Quick test_machines ]);
      ("cost", [ Alcotest.test_case "cycle model" `Quick test_cost ]);
    ]
