(** minmax: exhaustive game-tree search for tic-tac-toe (paper §6.1,
    benchmark 8, "min-max search for tic-tac-toe" — structurally similar
    to nqueens: large fan-out, leaves at almost every level).

    The task-parallel kernel explores the full game tree and reduces the
    outcome tallies (X wins / O wins / draws) — associative, commutative
    updates as Fig. 2 requires, in lieu of the minimax return value, which
    a spawn-only language cannot thread upward.  The native reference
    additionally computes the true minimax value (0 for tic-tac-toe) as an
    independent check of the same tree.

    Scaled to the 3×3 board (≈ 550k tasks); the paper's 4×4 board is
    accepted via {!params}. *)

type params = { size : int }
(** Board is [size × size]; win = a full row, column, or diagonal. *)

val default : params
(** 3×3. *)

val paper : params
(** 4×4 (2.4G tasks at depth 13 in the paper — simulator-hostile). *)

type outcome = { x_wins : int; o_wins : int; draws : int }

val reference : params -> outcome
(** Exhaustive tally by native recursion. *)

val minimax_value : params -> int
(** True minimax value from X's perspective (+1 X win, 0 draw, -1 O win);
    0 for the 3×3 game. *)

val spec : params -> Vc_core.Spec.t
