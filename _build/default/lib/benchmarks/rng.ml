let mask32 = 0xFFFFFFFF

(* murmur3-style 32-bit finalizer over (state, site). *)
let mix32 state site =
  let h = ref ((state lxor (site * 0x9E3779B9)) land mask32) in
  h := (!h lxor (!h lsr 16)) land mask32;
  h := !h * 0x85EBCA6B land mask32;
  h := (!h lxor (!h lsr 13)) land mask32;
  h := !h * 0xC2B2AE35 land mask32;
  h := (!h lxor (!h lsr 16)) land mask32;
  !h land 0x7FFFFFFF

let to_unit h = float_of_int (h land 0x7FFFFFFF) /. 2147483648.0

type t = { mutable state : int }

let create ~seed = { state = seed land max_int }

let next t =
  (* splitmix-style generator over OCaml's 63-bit ints (constants truncated
     to fit; quality is ample for workload generation) *)
  t.state <- (t.state + 0x1E3779B97F4A7C15) land max_int;
  let z = t.state in
  let z = (z lxor (z lsr 30)) * 0x3F58476D1CE4E5B9 land max_int in
  let z = (z lxor (z lsr 27)) * 0x14D049BB133111EB land max_int in
  z lxor (z lsr 31)

let int t ~bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  next t mod bound

let bool t p = to_unit (next t land 0x7FFFFFFF) < p
