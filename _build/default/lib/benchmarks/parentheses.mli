(** parentheses: counts the well-formed strings of [n] parenthesis pairs
    (paper §6.1, benchmark 3) — the result is the Catalan number C_n.

    State (o, c) = parentheses placed so far; spawn an open child while
    [o < n] and a close child while [c < o].  Leaves sit only at depth 2n,
    but interior nodes often have a single child, giving the intermittent
    shallower branches of Fig. 9(c). *)

type params = { pairs : int }

val default : params
(** Scaled: n = 14 pairs, ≈ 7.7M tasks (Catalan(14) = 2 674 440 leaves). *)

val paper : params
(** n = 19 pairs, as evaluated in the paper. *)

val reference : params -> int
(** Catalan number by dynamic programming. *)

val spec : params -> Vc_core.Spec.t

val dsl_source : string
val dsl : params -> Vc_lang.Ast.program * int list
