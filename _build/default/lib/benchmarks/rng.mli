(** Deterministic pseudo-random substrate.

    Two roles (DESIGN.md §2 substitutions):
    - {!mix32}: the per-node hash UTS derives child states from.  The
      original UTS uses SHA-1; any well-mixed deterministic hash exercises
      the same code path, so a 32-bit finalizer (fits the I32 lane the
      paper uses for uts) stands in.
    - {!t}: a splitmix-style stream generator for building workloads
      (knapsack item values, random graphs). *)

val mix32 : int -> int -> int
(** [mix32 state site]: well-mixed 32-bit hash of a node state and a child
    index; result in [0, 2^31). *)

val to_unit : int -> float
(** Map a {!mix32} output to [0,1). *)

type t

val create : seed:int -> t
val int : t -> bound:int -> int
(** Uniform in [0, bound). Raises [Invalid_argument] if [bound <= 0]. *)

val bool : t -> float -> bool
(** [bool t p] is true with probability [p]. *)
