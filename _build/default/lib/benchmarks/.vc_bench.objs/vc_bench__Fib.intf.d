lib/benchmarks/fib.mli: Vc_core Vc_lang
