lib/benchmarks/registry.mli: Vc_core Vc_lang
