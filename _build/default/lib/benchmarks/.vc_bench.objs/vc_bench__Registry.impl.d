lib/benchmarks/registry.ml: Binomial Fib Graphcol Knapsack List Minmax Nqueens Parentheses Uts Vc_core Vc_lang
