lib/benchmarks/parentheses.mli: Vc_core Vc_lang
