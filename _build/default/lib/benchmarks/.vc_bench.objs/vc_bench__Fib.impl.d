lib/benchmarks/fib.ml: Printf Vc_core Vc_lang Vc_simd
