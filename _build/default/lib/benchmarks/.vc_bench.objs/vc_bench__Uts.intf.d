lib/benchmarks/uts.mli: Vc_core
