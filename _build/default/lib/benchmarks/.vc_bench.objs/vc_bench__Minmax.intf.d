lib/benchmarks/minmax.mli: Vc_core
