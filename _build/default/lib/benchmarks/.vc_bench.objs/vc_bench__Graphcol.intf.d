lib/benchmarks/graphcol.mli: Vc_core
