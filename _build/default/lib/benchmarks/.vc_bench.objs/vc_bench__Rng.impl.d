lib/benchmarks/rng.ml:
