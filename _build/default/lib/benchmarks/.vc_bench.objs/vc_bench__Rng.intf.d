lib/benchmarks/rng.mli:
