lib/benchmarks/knapsack.mli: Vc_core
