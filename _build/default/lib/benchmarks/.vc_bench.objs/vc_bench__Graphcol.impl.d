lib/benchmarks/graphcol.ml: Array Hashtbl List Printf Rng Vc_core Vc_lang Vc_simd
