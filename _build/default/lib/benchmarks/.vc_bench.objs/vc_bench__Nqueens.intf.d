lib/benchmarks/nqueens.mli: Vc_core
