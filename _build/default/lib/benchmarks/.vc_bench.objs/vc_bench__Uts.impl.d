lib/benchmarks/uts.ml: List Printf Rng Vc_core Vc_lang Vc_simd
