lib/benchmarks/binomial.ml: Printf Vc_core Vc_lang Vc_simd
