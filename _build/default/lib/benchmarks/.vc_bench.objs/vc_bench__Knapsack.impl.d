lib/benchmarks/knapsack.ml: Array Printf Rng Vc_core Vc_lang Vc_simd
