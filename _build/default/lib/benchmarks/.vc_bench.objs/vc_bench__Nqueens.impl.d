lib/benchmarks/nqueens.ml: Array List Printf Vc_core Vc_lang Vc_simd
