lib/benchmarks/binomial.mli: Vc_core Vc_lang
