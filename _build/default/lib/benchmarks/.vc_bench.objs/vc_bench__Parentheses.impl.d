lib/benchmarks/parentheses.ml: Array Printf Vc_core Vc_lang Vc_simd
