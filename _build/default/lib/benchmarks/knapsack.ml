type params = { n : int; capacity_ratio : float; seed : int }

let default = { n = 22; capacity_ratio = 0.5; seed = 1 }
let paper = { n = 31; capacity_ratio = 0.5; seed = 1 }

let items { n; seed; _ } =
  let rng = Rng.create ~seed in
  let weights = Array.init n (fun _ -> 1 + Rng.int rng ~bound:40) in
  let values = Array.init n (fun _ -> 1 + Rng.int rng ~bound:100) in
  (weights, values)

let capacity ({ capacity_ratio; _ } as p) =
  let weights, _ = items p in
  let total = Array.fold_left ( + ) 0 weights in
  int_of_float (float_of_int total *. capacity_ratio)

let reference p =
  let weights, values = items p in
  let cap = capacity p in
  let best = Array.make (cap + 1) 0 in
  Array.iteri
    (fun i w ->
      for c = cap downto w do
        best.(c) <- max best.(c) (best.(c - w) + values.(i))
      done)
    weights;
  best.(cap)

let spec p =
  let weights, values = items p in
  let cap = capacity p in
  let n = p.n in
  (* fields: item index, remaining capacity, accumulated value *)
  let schema =
    Vc_core.Schema.create ~lane_kind:Vc_simd.Lane.I16 [ "idx"; "cap"; "value" ]
  in
  {
    Vc_core.Spec.name = "knapsack";
    description = Printf.sprintf "0/1 knapsack, %d items, no pruning" n;
    schema;
    num_spawns = 2;
    roots = [ [| 0; cap; 0 |] ];
    reducers = [ ("best", Vc_lang.Reducer.Max) ];
    is_base = (fun blk row -> Vc_core.Block.get blk ~field:0 ~row = n);
    exec_base =
      (fun reducers blk row ->
        (* infeasible leaves (capacity overrun) contribute nothing *)
        if Vc_core.Block.get blk ~field:1 ~row >= 0 then
          Vc_lang.Reducer.reduce reducers "best"
            (Vc_core.Block.get blk ~field:2 ~row));
    spawn =
      (fun blk row ~site ~dst ->
        let idx = Vc_core.Block.get blk ~field:0 ~row in
        let c = Vc_core.Block.get blk ~field:1 ~row in
        let v = Vc_core.Block.get blk ~field:2 ~row in
        (match site with
        | 0 -> Vc_core.Block.push dst [| idx + 1; c - weights.(idx); v + values.(idx) |]
        | _ -> Vc_core.Block.push dst [| idx + 1; c; v |]);
        true);
    insns = { check_insns = 2; base_insns = 4; inductive_insns = 2; spawn_insns = 4; scalar_insns = 4 };
  }

let dsl_source_note =
  "knapsack's kernel conforms to the specification language, but its item \
   table is ambient program state (a C global array); the language of Fig. 2 \
   has no arrays, so the spec closes over the table directly - the same \
   situation as the paper's C benchmarks, where only the recursive kernel is \
   transformed."
