type params = { size : int }

let default = { size = 3 }
let paper = { size = 4 }

type outcome = { x_wins : int; o_wins : int; draws : int }

(* Cells: 0 empty, 1 X, 2 O.  Player to move: 1 or 2. *)

let lines size =
  let n = size in
  let rows = List.init n (fun r -> List.init n (fun c -> (r * n) + c)) in
  let cols = List.init n (fun c -> List.init n (fun r -> (r * n) + c)) in
  let diag1 = [ List.init n (fun i -> (i * n) + i) ] in
  let diag2 = [ List.init n (fun i -> (i * n) + (n - 1 - i)) ] in
  List.map Array.of_list (rows @ cols @ diag1 @ diag2)

let winner ~lines board =
  let wins player =
    List.exists (fun line -> Array.for_all (fun i -> board.(i) = player) line) lines
  in
  if wins 1 then 1 else if wins 2 then 2 else 0

let full board = Array.for_all (fun c -> c <> 0) board

let reference { size } =
  let lines = lines size in
  let cells = size * size in
  let board = Array.make cells 0 in
  let tally = { x_wins = 0; o_wins = 0; draws = 0 } in
  let acc = ref tally in
  let rec go player =
    match winner ~lines board with
    | 1 -> acc := { !acc with x_wins = !acc.x_wins + 1 }
    | 2 -> acc := { !acc with o_wins = !acc.o_wins + 1 }
    | _ ->
        if full board then acc := { !acc with draws = !acc.draws + 1 }
        else
          for i = 0 to cells - 1 do
            if board.(i) = 0 then begin
              board.(i) <- player;
              go (3 - player);
              board.(i) <- 0
            end
          done
  in
  go 1;
  !acc

let minimax_value { size } =
  let lines = lines size in
  let cells = size * size in
  let board = Array.make cells 0 in
  let rec go player =
    match winner ~lines board with
    | 1 -> 1
    | 2 -> -1
    | _ ->
        if full board then 0
        else begin
          let best = ref (if player = 1 then -2 else 2) in
          for i = 0 to cells - 1 do
            if board.(i) = 0 then begin
              board.(i) <- player;
              let v = go (3 - player) in
              board.(i) <- 0;
              if player = 1 then best := max !best v else best := min !best v
            end
          done;
          !best
        end
  in
  go 1

let spec { size } =
  let lines = lines size in
  let cells = size * size in
  (* fields: player to move, then one field per cell *)
  let fields = "player" :: List.init cells (fun i -> Printf.sprintf "b%d" i) in
  let schema = Vc_core.Schema.create ~lane_kind:Vc_simd.Lane.I8 fields in
  let root = Array.make (cells + 1) 0 in
  root.(0) <- 1;
  let board_of blk row =
    Array.init cells (fun i -> Vc_core.Block.get blk ~field:(i + 1) ~row)
  in
  let terminal board = winner ~lines board <> 0 || full board in
  {
    Vc_core.Spec.name = "minmax";
    description = Printf.sprintf "tic-tac-toe %dx%d outcome tally" size size;
    schema;
    num_spawns = cells;
    roots = [ root ];
    reducers =
      [
        ("x_wins", Vc_lang.Reducer.Sum);
        ("o_wins", Vc_lang.Reducer.Sum);
        ("draws", Vc_lang.Reducer.Sum);
      ];
    is_base = (fun blk row -> terminal (board_of blk row));
    exec_base =
      (fun reducers blk row ->
        let board = board_of blk row in
        match winner ~lines board with
        | 1 -> Vc_lang.Reducer.reduce reducers "x_wins" 1
        | 2 -> Vc_lang.Reducer.reduce reducers "o_wins" 1
        | _ -> Vc_lang.Reducer.reduce reducers "draws" 1);
    spawn =
      (fun blk brow ~site ~dst ->
        if Vc_core.Block.get blk ~field:(site + 1) ~row:brow <> 0 then false
        else begin
          let player = Vc_core.Block.get blk ~field:0 ~row:brow in
          let child = Vc_core.Block.reserve dst in
          Vc_core.Block.set dst ~field:0 ~row:child (3 - player);
          for i = 0 to cells - 1 do
            Vc_core.Block.set dst ~field:(i + 1) ~row:child
              (Vc_core.Block.get blk ~field:(i + 1) ~row:brow)
          done;
          Vc_core.Block.set dst ~field:(site + 1) ~row:child player;
          true
        end);
    insns =
      {
        check_insns = 3 * ((2 * size) + 2);
        base_insns = 6;
        inductive_insns = 2;
        spawn_insns = 3 + cells; scalar_insns = 60 };
  }
