(** fib: the classic doubly-recursive Fibonacci microbenchmark (paper
    §6.1, benchmark 2; the Cilk hello-world).

    Computation tree: node [n] spawns [n-1] and [n-2]; leaves reduce their
    [n] (0 or 1) into a sum, so the reducer ends at [fib n].  Slightly
    unbalanced (the [n-2] subtree is shallower).  The paper computes
    fib(45) with [char] data — 16-wide SSE lanes. *)

type params = { n : int }

val default : params
(** Scaled: fib(30) ≈ 2.7M tasks. *)

val paper : params
(** fib(45), as evaluated in the paper. *)

val reference : params -> int
(** Native recursion: the expected reducer value. *)

val spec : params -> Vc_core.Spec.t

val dsl_source : string
(** The program in concrete syntax (whole program fits the language). *)

val dsl : params -> Vc_lang.Ast.program * int list
