(** knapsack: exhaustive 0/1-knapsack search (paper §6.1, benchmark 1).

    At item [i] the task spawns an "include" child and an "exclude" child
    unconditionally (the paper uses the "long" input {e without pruning} to
    ensure determinism), so the computation tree is a perfectly balanced
    binary tree of depth [n] with base cases only at the last level
    (Fig. 9(a)).  Leaves whose weight fits the capacity reduce their value
    into a max reducer.

    Items are generated deterministically from a seed; the reference
    optimum comes from an independent dynamic program. *)

type params = { n : int; capacity_ratio : float; seed : int }

val default : params
(** Scaled: 22 items (2^23 - 1 tasks). *)

val paper : params
(** 31 items (the paper's "long" input has 2^32 - 1 tasks). *)

val items : params -> int array * int array
(** (weights, values), deterministic in [seed]. *)

val capacity : params -> int

val reference : params -> int
(** DP optimum — the expected max-reducer value. *)

val spec : params -> Vc_core.Spec.t

val dsl_source_note : string
(** Why the DSL variant carries the item tables through builtins rather
    than globals (the language has no arrays); the native spec is the
    evaluated form, as in the paper's knapsack whose item table is ambient
    C state. *)
