type params = { n : int; k : int }

let default = { n = 24; k = 10 }
let paper = { n = 36; k = 13 }

let rec choose n k = if k = 0 || k = n then 1 else choose (n - 1) (k - 1) + choose (n - 1) k

let reference { n; k } = choose n k

let spec { n; k } =
  let schema = Vc_core.Schema.create ~lane_kind:Vc_simd.Lane.I8 [ "n"; "k" ] in
  {
    Vc_core.Spec.name = "binomial";
    description = Printf.sprintf "C(%d,%d) by Pascal recursion" n k;
    schema;
    num_spawns = 2;
    roots = [ [| n; k |] ];
    reducers = [ ("result", Vc_lang.Reducer.Sum) ];
    is_base =
      (fun blk row ->
        let k = Vc_core.Block.get blk ~field:1 ~row in
        k = 0 || k = Vc_core.Block.get blk ~field:0 ~row);
    exec_base = (fun reducers _blk _row -> Vc_lang.Reducer.reduce reducers "result" 1);
    spawn =
      (fun blk row ~site ~dst ->
        let n = Vc_core.Block.get blk ~field:0 ~row in
        let k = Vc_core.Block.get blk ~field:1 ~row in
        (match site with
        | 0 -> Vc_core.Block.push dst [| n - 1; k - 1 |]
        | _ -> Vc_core.Block.push dst [| n - 1; k |]);
        true);
    insns = { check_insns = 4; base_insns = 2; inductive_insns = 1; spawn_insns = 3; scalar_insns = 3 };
  }

let dsl_source =
  "reducer sum result;\n\n\
   def binomial(n, k) =\n\
  \  if k == 0 || k == n then {\n\
  \    reduce(result, 1);\n\
  \  } else {\n\
  \    spawn binomial(n - 1, k - 1);\n\
  \    spawn binomial(n - 1, k);\n\
  \  }\n"

let dsl { n; k } = (Vc_lang.Parser.parse_string dsl_source, [ n; k ])
