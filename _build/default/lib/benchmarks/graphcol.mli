(** graphcol: counts the proper 3-colorings of a random graph (paper §6.1,
    benchmark 5).

    Vertices are colored in index order; spawn site [c] (one per color)
    extends the partial coloring when color [c] conflicts with no
    already-colored neighbor.  Conflicted tasks die at every level, giving
    the uneven task distribution of Fig. 9(e) and strong re-expansion
    benefit.  The frame carries the full color array (char per vertex), so
    the kernel "performs lots of lookups" — the paper's explanation for
    graphcol's cache sensitivity. *)

type params = { vertices : int; edges : int; colors : int; seed : int }

val default : params
(** Scaled: 30 vertices / 54 edges / 3 colors (≈ 2.3M tasks). *)

val paper : params
(** 38 vertices / 64 edges / 3 colors. *)

val graph : params -> (int * int) array
(** Deterministic random edge list (no duplicates or self-loops). *)

val reference : params -> int
(** Independent backtracking count over the same graph. *)

val spec : params -> Vc_core.Spec.t

val spec_of_edges : colors:int -> vertices:int -> (int * int) array -> Vc_core.Spec.t
(** Build the spec for an explicit graph (used by tests on known graphs:
    triangle, path, cycle — checked against the chromatic polynomial). *)
