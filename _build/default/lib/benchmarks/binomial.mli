(** binomial: recursive computation of the binomial coefficient C(n, k) by
    Pascal's rule (paper §6.1, benchmark 7; structurally similar to fib).

    Node (n, k) spawns (n-1, k-1) and (n-1, k); leaves (k = 0 or k = n)
    each contribute 1, so the sum reducer ends at C(n, k). *)

type params = { n : int; k : int }

val default : params
(** Scaled: C(24, 10) ≈ 3.9M tasks. *)

val paper : params
(** C(36, 13), as evaluated in the paper. *)

val reference : params -> int

val spec : params -> Vc_core.Spec.t

val dsl_source : string
val dsl : params -> Vc_lang.Ast.program * int list
