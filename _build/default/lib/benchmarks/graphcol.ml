type params = { vertices : int; edges : int; colors : int; seed : int }

let default = { vertices = 30; edges = 54; colors = 3; seed = 7 }
let paper = { vertices = 38; edges = 64; colors = 3; seed = 7 }

let graph { vertices; edges; seed; _ } =
  let rng = Rng.create ~seed in
  let seen = Hashtbl.create (edges * 2) in
  let out = ref [] in
  let count = ref 0 in
  while !count < edges do
    let u = Rng.int rng ~bound:vertices in
    let v = Rng.int rng ~bound:vertices in
    if u <> v then begin
      let key = (min u v, max u v) in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        out := key :: !out;
        incr count
      end
    end
  done;
  Array.of_list (List.rev !out)

(* Adjacency restricted to already-colored (lower-index) neighbors. *)
let lower_neighbors ~vertices edge_list =
  let nbrs = Array.make vertices [] in
  Array.iter
    (fun (u, v) ->
      let lo = min u v and hi = max u v in
      nbrs.(hi) <- lo :: nbrs.(hi))
    edge_list;
  Array.map Array.of_list nbrs

let count_colorings ~colors ~vertices edge_list =
  let nbrs = lower_neighbors ~vertices edge_list in
  let coloring = Array.make vertices (-1) in
  let count = ref 0 in
  let rec go v =
    if v = vertices then incr count
    else
      for c = 0 to colors - 1 do
        if Array.for_all (fun u -> coloring.(u) <> c) nbrs.(v) then begin
          coloring.(v) <- c;
          go (v + 1);
          coloring.(v) <- -1
        end
      done
  in
  go 0;
  !count

let reference p = count_colorings ~colors:p.colors ~vertices:p.vertices (graph p)

let spec_of_edges ~colors ~vertices edge_list =
  let nbrs = lower_neighbors ~vertices edge_list in
  (* fields: next vertex to color, then one color per vertex (-1 = none) *)
  let fields = "v" :: List.init vertices (fun i -> Printf.sprintf "c%d" i) in
  let schema = Vc_core.Schema.create ~lane_kind:Vc_simd.Lane.I8 fields in
  let root = Array.make (vertices + 1) (-1) in
  root.(0) <- 0;
  let avg_deg =
    let total = Array.fold_left (fun acc a -> acc + Array.length a) 0 nbrs in
    max 1 (total / max 1 vertices)
  in
  {
    Vc_core.Spec.name = "graphcol";
    description =
      Printf.sprintf "%d-colorings of a %d-vertex graph" colors vertices;
    schema;
    num_spawns = colors;
    roots = [ root ];
    reducers = [ ("colorings", Vc_lang.Reducer.Sum) ];
    is_base = (fun blk row -> Vc_core.Block.get blk ~field:0 ~row = vertices);
    exec_base =
      (fun reducers _blk _row -> Vc_lang.Reducer.reduce reducers "colorings" 1);
    spawn =
      (fun blk brow ~site ~dst ->
        let v = Vc_core.Block.get blk ~field:0 ~row:brow in
        let ok =
          Array.for_all
            (fun u -> Vc_core.Block.get blk ~field:(u + 1) ~row:brow <> site)
            nbrs.(v)
        in
        if not ok then false
        else begin
          let child = Vc_core.Block.reserve dst in
          Vc_core.Block.set dst ~field:0 ~row:child (v + 1);
          for u = 0 to vertices - 1 do
            Vc_core.Block.set dst ~field:(u + 1) ~row:child
              (Vc_core.Block.get blk ~field:(u + 1) ~row:brow)
          done;
          Vc_core.Block.set dst ~field:(v + 1) ~row:child site;
          true
        end);
    insns =
      {
        check_insns = 2;
        base_insns = 2;
        inductive_insns = 2;
        spawn_insns = 2 + (3 * avg_deg); scalar_insns = 2 };
  }

let spec p = spec_of_edges ~colors:p.colors ~vertices:p.vertices (graph p)
