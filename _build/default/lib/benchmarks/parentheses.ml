type params = { pairs : int }

let default = { pairs = 14 }
let paper = { pairs = 19 }

let reference { pairs } =
  (* Catalan recurrence: C_n = sum_i C_i * C_(n-1-i). *)
  let cat = Array.make (pairs + 1) 0 in
  cat.(0) <- 1;
  for n = 1 to pairs do
    let s = ref 0 in
    for i = 0 to n - 1 do
      s := !s + (cat.(i) * cat.(n - 1 - i))
    done;
    cat.(n) <- !s
  done;
  cat.(pairs)

let spec { pairs } =
  let n = pairs in
  let schema = Vc_core.Schema.create ~lane_kind:Vc_simd.Lane.I8 [ "open"; "close" ] in
  {
    Vc_core.Spec.name = "parentheses";
    description = Printf.sprintf "well-formed strings of %d parenthesis pairs" n;
    schema;
    num_spawns = 2;
    roots = [ [| 0; 0 |] ];
    reducers = [ ("result", Vc_lang.Reducer.Sum) ];
    is_base =
      (fun blk row ->
        Vc_core.Block.get blk ~field:0 ~row = n
        && Vc_core.Block.get blk ~field:1 ~row = n);
    exec_base = (fun reducers _blk _row -> Vc_lang.Reducer.reduce reducers "result" 1);
    spawn =
      (fun blk row ~site ~dst ->
        let o = Vc_core.Block.get blk ~field:0 ~row in
        let c = Vc_core.Block.get blk ~field:1 ~row in
        match site with
        | 0 ->
            if o < n then begin
              Vc_core.Block.push dst [| o + 1; c |];
              true
            end
            else false
        | _ ->
            if c < o then begin
              Vc_core.Block.push dst [| o; c + 1 |];
              true
            end
            else false);
    insns = { check_insns = 3; base_insns = 2; inductive_insns = 1; spawn_insns = 3; scalar_insns = 3 };
  }

let dsl_source =
  "reducer sum result;\n\n\
   def paren(n, o, c) =\n\
  \  if o == n && c == n then {\n\
  \    reduce(result, 1);\n\
  \  } else {\n\
  \    if o < n then {\n\
  \      spawn paren(n, o + 1, c);\n\
  \    }\n\
  \    if c < o then {\n\
  \      spawn paren(n, o, c + 1);\n\
  \    }\n\
  \  }\n"

let dsl { pairs } = (Vc_lang.Parser.parse_string dsl_source, [ pairs; 0; 0 ])
