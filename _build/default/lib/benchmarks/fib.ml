type params = { n : int }

let default = { n = 30 }
let paper = { n = 45 }

let rec fib n = if n < 2 then n else fib (n - 1) + fib (n - 2)

let reference { n } = fib n

let spec { n } =
  let schema = Vc_core.Schema.create ~lane_kind:Vc_simd.Lane.I8 [ "n" ] in
  {
    Vc_core.Spec.name = "fib";
    description = Printf.sprintf "fib(%d), sum reducer" n;
    schema;
    num_spawns = 2;
    roots = [ [| n |] ];
    reducers = [ ("result", Vc_lang.Reducer.Sum) ];
    is_base = (fun blk row -> Vc_core.Block.get blk ~field:0 ~row < 2);
    exec_base =
      (fun reducers blk row ->
        Vc_lang.Reducer.reduce reducers "result" (Vc_core.Block.get blk ~field:0 ~row));
    spawn =
      (fun blk row ~site ~dst ->
        let n = Vc_core.Block.get blk ~field:0 ~row in
        let child = n - 1 - site in
        Vc_core.Block.push dst [| child |];
        true);
    insns = { check_insns = 2; base_insns = 2; inductive_insns = 1; spawn_insns = 2; scalar_insns = 3 };
  }

let dsl_source =
  "reducer sum result;\n\n\
   def fib(n) =\n\
  \  if n < 2 then {\n\
  \    reduce(result, n);\n\
  \  } else {\n\
  \    spawn fib(n - 1);\n\
  \    spawn fib(n - 2);\n\
  \  }\n"

let dsl { n } = (Vc_lang.Parser.parse_string dsl_source, [ n ])
