type t = {
  name : string;
  vector_bits : int;
  has_shuffle : bool;
  has_masked_scatter : bool;
  min_lane_bits : int;
  scalar_issue : float;
  vector_issue : float;
  gather_cost : float;
  scatter_cost : float;
}

let sse42 =
  {
    name = "sse4.2";
    vector_bits = 128;
    has_shuffle = true;
    has_masked_scatter = false;
    min_lane_bits = 8;
    scalar_issue = 1.0;
    vector_issue = 1.0;
    gather_cost = 4.0;
    scatter_cost = 4.0;
  }

let avx512 =
  {
    name = "avx512";
    vector_bits = 512;
    has_shuffle = false;
    has_masked_scatter = true;
    min_lane_bits = 32;
    scalar_issue = 2.0;
    vector_issue = 1.0;
    gather_cost = 2.0;
    scatter_cost = 2.0;
  }

let avx512bw =
  {
    name = "avx512bw";
    vector_bits = 512;
    has_shuffle = true;
    has_masked_scatter = true;
    min_lane_bits = 8;
    scalar_issue = 1.5;
    vector_issue = 1.0;
    gather_cost = 2.0;
    scatter_cost = 2.0;
  }

let effective_kind t k =
  let widen k = if Lane.bits k < t.min_lane_bits then Lane.fitting (1 lsl (t.min_lane_bits - 2)) else k in
  widen k

let lanes t k = t.vector_bits / Lane.bits (effective_kind t k)

let pp fmt t =
  Format.fprintf fmt "%s (%d-bit%s%s)" t.name t.vector_bits
    (if t.has_shuffle then ", shuffle" else "")
    (if t.has_masked_scatter then ", masked-scatter" else "")
