(** Lane predicate masks.

    A mask is a bitset over the lanes of one vector register: bit [i] set
    means lane [i] is active.  Masks are what [isBase] produces and what the
    stream-compaction tables are indexed by (paper §5). *)

type t
(** A mask together with its width (number of lanes it covers).  Widths up
    to 62 lanes are supported, far beyond any ISA modeled here. *)

val create : width:int -> int -> t
(** [create ~width bits] makes a mask of [width] lanes from the low [width]
    bits of [bits].  Raises [Invalid_argument] if [width] is not in
    [1..62]. *)

val zero : width:int -> t
val full : width:int -> t

val width : t -> int

val bits : t -> int
(** The raw bit pattern; only the low [width t] bits are meaningful. *)

val test : t -> int -> bool
(** [test m i] is whether lane [i] is active.  Raises [Invalid_argument]
    when [i] is out of range. *)

val set : t -> int -> t
(** Functional update: activate lane [i]. *)

val popcount : t -> int
(** Number of active lanes. *)

val lognot : t -> t
(** Complement within the mask's width. *)

val logand : t -> t -> t
val logor : t -> t -> t

val of_pred : width:int -> (int -> bool) -> t
(** [of_pred ~width f] activates every lane [i] with [f i]. *)

val of_bools : bool array -> t
val to_bools : t -> bool array

val active_lanes : t -> int list
(** Indices of active lanes, ascending. *)

val is_empty : t -> bool
val is_full : t -> bool

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
(** Prints e.g. [1011] — lane 0 leftmost. *)
