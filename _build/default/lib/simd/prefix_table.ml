type t = {
  width : int;
  offsets : int array array;
  advances : int array;
}

let make ~width =
  if width < 1 || width > 16 then
    invalid_arg (Printf.sprintf "Prefix_table.make: width %d not in 1..16" width);
  let entries = 1 lsl width in
  let offsets =
    Array.init entries (fun m ->
        let off = Array.make width 0 in
        let sum = ref 0 in
        for lane = 0 to width - 1 do
          off.(lane) <- !sum;
          if m land (1 lsl lane) <> 0 then incr sum
        done;
        off)
  in
  let advances =
    Array.init entries (fun m ->
        let rec pop acc b = if b = 0 then acc else pop (acc + (b land 1)) (b lsr 1) in
        pop 0 m)
  in
  { width; offsets; advances }

let width t = t.width
let entry_count t = Array.length t.offsets
let memory_bytes t = entry_count t * (t.width + 1)

let check_mask t m =
  if m < 0 || m >= entry_count t then
    invalid_arg (Printf.sprintf "Prefix_table: mask %#x out of range for width %d" m t.width)

let offsets t m =
  check_mask t m;
  t.offsets.(m)

let advance t m =
  check_mask t m;
  t.advances.(m)

let apply t m ~src ~dst ~pos =
  let off = offsets t m in
  for lane = 0 to t.width - 1 do
    if m land (1 lsl lane) <> 0 then dst.(pos + off.(lane)) <- src.(lane)
  done;
  pos + advance t m
