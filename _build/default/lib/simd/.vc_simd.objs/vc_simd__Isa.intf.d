lib/simd/isa.mli: Format Lane
