lib/simd/vm.mli: Isa Stats
