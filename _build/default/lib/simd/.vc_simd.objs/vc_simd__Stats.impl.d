lib/simd/stats.ml: Format
