lib/simd/compact.mli: Isa Vm
