lib/simd/shuffle_table.mli:
