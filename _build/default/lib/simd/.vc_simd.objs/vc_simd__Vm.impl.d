lib/simd/vm.ml: Array Isa Printf Stats
