lib/simd/mask.ml: Array Format Fun List Printf
