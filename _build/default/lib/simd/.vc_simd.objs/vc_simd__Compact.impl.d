lib/simd/compact.ml: Array Hashtbl Isa Prefix_table Printf Shuffle_table Stats Vm
