lib/simd/lane.mli: Format
