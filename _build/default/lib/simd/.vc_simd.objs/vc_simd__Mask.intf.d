lib/simd/mask.mli: Format
