lib/simd/isa.ml: Format Lane
