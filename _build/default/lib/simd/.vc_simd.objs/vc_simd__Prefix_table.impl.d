lib/simd/prefix_table.ml: Array Printf
