lib/simd/lane.ml: Format List
