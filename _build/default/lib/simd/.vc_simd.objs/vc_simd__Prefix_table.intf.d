lib/simd/prefix_table.mli:
