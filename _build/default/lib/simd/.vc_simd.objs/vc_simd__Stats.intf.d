lib/simd/stats.mli: Format
