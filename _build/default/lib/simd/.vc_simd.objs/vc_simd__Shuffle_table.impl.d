lib/simd/shuffle_table.ml: Array Printf
