type t = {
  width : int;
  controls : int array array;  (* indexed by mask bit-pattern *)
  advances : int array;
}

let no_lane = -1

let make ~width =
  if width < 1 || width > 16 then
    invalid_arg (Printf.sprintf "Shuffle_table.make: width %d not in 1..16" width);
  let entries = 1 lsl width in
  let controls =
    Array.init entries (fun m ->
        let control = Array.make width no_lane in
        let pos = ref 0 in
        for lane = 0 to width - 1 do
          if m land (1 lsl lane) <> 0 then begin
            control.(!pos) <- lane;
            incr pos
          end
        done;
        control)
  in
  let advances =
    Array.init entries (fun m ->
        let rec pop acc b = if b = 0 then acc else pop (acc + (b land 1)) (b lsr 1) in
        pop 0 m)
  in
  { width; controls; advances }

let width t = t.width
let entry_count t = Array.length t.controls

let memory_bytes t = entry_count t * (t.width + 1)

let check_mask t m =
  if m < 0 || m >= entry_count t then
    invalid_arg (Printf.sprintf "Shuffle_table: mask %#x out of range for width %d" m t.width)

let shuffle_control t m =
  check_mask t m;
  t.controls.(m)

let advance t m =
  check_mask t m;
  t.advances.(m)

let apply t m ~src ~dst ~pos =
  let control = shuffle_control t m in
  let n = advance t m in
  for i = 0 to n - 1 do
    dst.(pos + i) <- src.(control.(i))
  done;
  pos + n
