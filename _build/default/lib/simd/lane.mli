(** Lane kinds for the simulated vector ISA.

    A vector register holds [vector_bits / bits kind] lanes of the given
    kind.  The paper exploits narrow lanes where the data permits (e.g.
    [fib]'s argument fits in a [char], giving 16 lanes on 128-bit SSE4.2),
    so lane kind is a per-benchmark choice (paper, Table 1). *)

type kind =
  | I8   (** 8-bit integer lanes ("char" in the paper) *)
  | I16  (** 16-bit integer lanes *)
  | I32  (** 32-bit integer lanes (the only kind IMCI supports well) *)
  | I64  (** 64-bit integer lanes *)

(** Width of one lane in bits. *)
val bits : kind -> int

(** Width of one lane in bytes. *)
val bytes : kind -> int

(** Short printable name, e.g. ["i8"]. *)
val to_string : kind -> string

val pp : Format.formatter -> kind -> unit

(** All lane kinds, narrowest first. *)
val all : kind list

(** Smallest kind whose signed range contains [v], e.g. for choosing the
    narrowest viable lane for a benchmark's data (paper §6.1). *)
val fitting : int -> kind
