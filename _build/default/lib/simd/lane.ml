type kind = I8 | I16 | I32 | I64

let bits = function I8 -> 8 | I16 -> 16 | I32 -> 32 | I64 -> 64

let bytes k = bits k / 8

let to_string = function I8 -> "i8" | I16 -> "i16" | I32 -> "i32" | I64 -> "i64"

let pp fmt k = Format.pp_print_string fmt (to_string k)

let all = [ I8; I16; I32; I64 ]

let fitting v =
  let fits k =
    let b = bits k - 1 in
    (* Signed range of a [bits k]-bit lane. *)
    v >= -(1 lsl b) && v < 1 lsl b
  in
  match List.find_opt fits all with
  | Some k -> k
  | None -> I64
