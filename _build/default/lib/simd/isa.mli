(** ISA profiles for the simulated vector hardware.

    Two profiles mirror the paper's platforms (§6.1):
    - {!sse42}: 128-bit vectors with an in-register shuffle instruction
      (Xeon E5-2670), lane kinds down to 8 bits;
    - {!avx512}: 512-bit vectors with masked scatter but {e no} shuffle
      (Xeon Phi SE10P, IMCI), 32-bit lanes minimum.

    The issue costs are the cycle model's per-instruction weights; the Phi's
    in-order scalar pipeline is modeled with a higher scalar issue cost,
    matching the paper's observation that Phi speedups exceed E5 speedups
    thanks to its "more powerful VPU" relative to its scalar side. *)

type t = {
  name : string;
  vector_bits : int;  (** register width in bits *)
  has_shuffle : bool;  (** in-register shuffle (SSE4.2 yes, IMCI no) *)
  has_masked_scatter : bool;  (** masked scatter store (IMCI yes) *)
  min_lane_bits : int;  (** narrowest lane the ISA supports well *)
  scalar_issue : float;  (** cycles per scalar instruction *)
  vector_issue : float;  (** cycles per vector instruction *)
  gather_cost : float;  (** extra cycles for a gather vs. packed load *)
  scatter_cost : float;  (** extra cycles for a scatter vs. packed store *)
}

val sse42 : t
val avx512 : t

val avx512bw : t
(** The paper's §8 future hardware: "the next version of the Xeon Phi will
    support character-level vector operations" — 512-bit vectors {e with}
    byte lanes (64-wide for char data) and both shuffle and masked
    scatter.  Used by the vector-width-scaling ablation. *)

val lanes : t -> Lane.kind -> int
(** Number of lanes a register holds for the given kind, after clamping the
    kind to [min_lane_bits].  E.g. [lanes sse42 I8 = 16], [lanes avx512 I8 =
    16] (I8 is widened to the 32-bit minimum). *)

val effective_kind : t -> Lane.kind -> Lane.kind
(** The lane kind actually used: [k] widened to [min_lane_bits] if needed.
    Models the Phi widening every data type to [int] (paper §6.1). *)

val pp : Format.formatter -> t -> unit
