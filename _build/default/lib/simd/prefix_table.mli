(** Precomputed exclusive-prefix-sum tables for masked-scatter compaction.

    The Xeon Phi path of the paper's stream compaction (§5): the ISA has no
    in-register shuffle, but a masked scatter can store selected lanes to
    memory.  The scatter offsets are the exclusive prefix sum of the mask —
    lane [i] lands at offset [sum_{j<i} m_j].  Like the shuffle table, the
    prefix-sum function is tabulated ([2^w] entries) and can be factorized
    over a narrower table combined with the advance counts. *)

type t

val make : width:int -> t
(** Tables for masks of [width] lanes (1..16). *)

val width : t -> int
val entry_count : t -> int

val memory_bytes : t -> int

val offsets : t -> int -> int array
(** [offsets t m] is the exclusive prefix sum of mask [m]'s bits: the
    in-group scatter offset of every lane (meaningful only for selected
    lanes).  Do not mutate. *)

val advance : t -> int -> int
(** Number of selected lanes — how far the stream position advances. *)

val apply : t -> int -> src:int array -> dst:int array -> pos:int -> int
(** Masked scatter: store the selected lanes of [src] to [dst.(pos + off)]
    per the prefix offsets, returning the advanced position. *)
