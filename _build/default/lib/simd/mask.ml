type t = { width : int; bits : int }

let check_width width =
  if width < 1 || width > 62 then
    invalid_arg (Printf.sprintf "Mask.create: width %d not in 1..62" width)

let low_bits width = (1 lsl width) - 1

let create ~width bits =
  check_width width;
  { width; bits = bits land low_bits width }

let zero ~width =
  check_width width;
  { width; bits = 0 }

let full ~width =
  check_width width;
  { width; bits = low_bits width }

let width m = m.width
let bits m = m.bits

let check_lane m i =
  if i < 0 || i >= m.width then
    invalid_arg (Printf.sprintf "Mask: lane %d out of range 0..%d" i (m.width - 1))

let test m i =
  check_lane m i;
  m.bits land (1 lsl i) <> 0

let set m i =
  check_lane m i;
  { m with bits = m.bits lor (1 lsl i) }

let popcount m =
  let rec count acc b = if b = 0 then acc else count (acc + (b land 1)) (b lsr 1) in
  count 0 m.bits

let lognot m = { m with bits = lnot m.bits land low_bits m.width }

let binop name f a b =
  if a.width <> b.width then
    invalid_arg (Printf.sprintf "Mask.%s: widths %d and %d differ" name a.width b.width);
  { a with bits = f a.bits b.bits }

let logand a b = binop "logand" ( land ) a b
let logor a b = binop "logor" ( lor ) a b

let of_pred ~width f =
  check_width width;
  let bits = ref 0 in
  for i = 0 to width - 1 do
    if f i then bits := !bits lor (1 lsl i)
  done;
  { width; bits = !bits }

let of_bools bools = of_pred ~width:(Array.length bools) (Array.get bools)

let to_bools m = Array.init m.width (fun i -> test m i)

let active_lanes m =
  List.filter (test m) (List.init m.width Fun.id)

let is_empty m = m.bits = 0
let is_full m = m.bits = low_bits m.width

let equal a b = a.width = b.width && a.bits = b.bits

let pp fmt m =
  for i = 0 to m.width - 1 do
    Format.pp_print_char fmt (if test m i then '1' else '0')
  done
