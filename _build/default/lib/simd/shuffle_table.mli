(** Precomputed shuffle and advance tables for stream compaction (paper §5).

    For a table width [w], the table has [2^w] entries.  Entry [m] (a lane
    mask) is the shuffle control that gathers the lanes selected by [m] to
    the front of a register, in order; unselected positions hold
    {!no_lane} ("F" in the paper's Fig. 8).  The companion {e advance
    table} stores [nnz(m)] — how far the output position advances — which
    is what lets a [w]-wide compaction be factorized into multiple passes
    over a [s]-wide table ([s < w], table size [2^s] instead of [2^w]). *)

type t

val no_lane : int
(** Sentinel (-1) marking "no element shuffled to this position". *)

val make : width:int -> t
(** Build the tables for [width] lanes (1..16).  Cost: [2^width] entries of
    [width] slots. *)

val width : t -> int

val entry_count : t -> int
(** [2^width]. *)

val memory_bytes : t -> int
(** Modeled footprint: [2^width * width] shuffle bytes plus [2^width]
    advance bytes.  This is the space the factorized algorithm saves. *)

val shuffle_control : t -> int -> int array
(** [shuffle_control t m] for a mask bit-pattern [m] (low [width] bits):
    the compacting shuffle control.  The returned array must not be
    mutated. *)

val advance : t -> int -> int
(** [advance t m] = number of selected lanes in [m] (the advance-table
    lookup of §5). *)

val apply : t -> int -> src:int array -> dst:int array -> pos:int -> int
(** [apply t m ~src ~dst ~pos] shuffles the lanes of [src] (length [width])
    selected by mask [m] to [dst.(pos)..], returning the new position.
    This is the single-register compaction step of Fig. 8. *)
