(** Additional experiments beyond the paper's tables and figures, ablating
    design choices DESIGN.md calls out. *)

val strawman : Sweep.ctx -> Format.formatter -> unit
(** §2's strawman (lane-per-thread divergent depth-first) vs. the blocked
    transformation — quantifying why the naive mapping fails. *)

val compaction_cost : Sweep.ctx -> Format.formatter -> unit
(** Instruction cost and table footprint of the four stream-compaction
    engines on one block-partition workload. *)

val dsl_vs_native : Sweep.ctx -> Format.formatter -> unit
(** The fully-automatic path (DSL → Fig. 7 transform → compiled spec) vs.
    the hand-written native spec for fib: same results, comparable model
    costs. *)

val aos_soa_overhead : Sweep.ctx -> Format.formatter -> unit
(** Cost of the dynamic AoS↔SoA conversion (§5) relative to one level of
    kernel execution, for a uts-sized block. *)

val multicore : Sweep.ctx -> Format.formatter -> unit
(** The §8 future-work hybrid: work-stealing multicore on top of the
    SIMD engine ({!Vc_core.Multicore}), swept over worker counts. *)

val width_scaling : Sweep.ctx -> Format.formatter -> unit
(** The §8 hardware-scaling claim: on a future ISA with char-level
    512-bit vectors (AVX512BW), the same transformed code automatically
    exploits 64-wide lanes. *)

val task_cutoff : Sweep.ctx -> Format.formatter -> unit
(** Why the paper runs without a task cut-off (§6.1): sequentializing
    below a threshold starves the SIMD lanes. *)

val warm_cache : Sweep.ctx -> Format.formatter -> unit
(** Table 2's minmax footnote: speedup with the caches warmed for the
    kernel computation. *)
