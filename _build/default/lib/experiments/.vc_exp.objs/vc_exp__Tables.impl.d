lib/experiments/tables.ml: Format List Printf Registry Sweep Vc_bench Vc_core Vc_mem
