lib/experiments/ascii_plot.mli: Format
