lib/experiments/ascii_plot.ml: Array Format List String
