lib/experiments/sweep.mli: Vc_bench Vc_core Vc_mem Vc_simd
