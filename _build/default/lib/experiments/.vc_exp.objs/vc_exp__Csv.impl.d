lib/experiments/csv.ml: Array Buffer Filename Fun List Printf Registry String Sweep Sys Unix Vc_bench Vc_core Vc_mem Vc_simd
