lib/experiments/figures.mli: Format Sweep
