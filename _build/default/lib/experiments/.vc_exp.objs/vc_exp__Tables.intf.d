lib/experiments/tables.mli: Format Sweep
