lib/experiments/csv.mli: Sweep
