lib/experiments/figures.ml: Array Format List Printf Registry Sweep Vc_bench Vc_core Vc_mem Vc_simd
