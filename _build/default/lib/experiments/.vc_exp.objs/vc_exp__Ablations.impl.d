lib/experiments/ablations.ml: Array Fib Format List Registry Sweep Vc_bench Vc_core Vc_mem Vc_simd
