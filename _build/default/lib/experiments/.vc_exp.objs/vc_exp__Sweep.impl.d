lib/experiments/sweep.ml: Binomial Fib Graphcol Hashtbl Knapsack List Minmax Nqueens Parentheses Registry Sys Uts Vc_bench Vc_core Vc_mem Vc_simd
