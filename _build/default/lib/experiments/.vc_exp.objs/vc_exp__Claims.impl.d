lib/experiments/claims.ml: Array Format Fun List Printf Registry String Sweep Vc_bench Vc_core Vc_mem Vc_simd
