lib/experiments/ablations.mli: Format Sweep
