lib/experiments/claims.mli: Format Sweep
