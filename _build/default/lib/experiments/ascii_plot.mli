(** Minimal ASCII line plots for the figure curves.

    Renders one or more (x, y) series on a character grid with a marker
    per series — enough to eyeball the shapes the paper plots (utilization
    ramps, cache cliffs, speedup humps) straight from the terminal. *)

type series = { label : string; marker : char; points : (float * float) list }

val plot :
  ?width:int ->
  ?height:int ->
  ?x_label:string ->
  ?y_label:string ->
  series list ->
  Format.formatter ->
  unit
(** Default 64×16 grid.  The x axis is linear in the given coordinates —
    pass log2 of the block size for the paper's log-scale sweeps.  Series
    with no points are skipped; an all-empty plot prints a notice.
    Overlapping markers show the later series. *)
