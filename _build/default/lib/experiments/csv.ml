open Vc_bench

let buf_csv f =
  let buf = Buffer.create 1024 in
  f buf;
  Buffer.contents buf

let row buf cells = Buffer.add_string buf (String.concat "," cells ^ "\n")

let e5 = Vc_mem.Machine.xeon_e5
let phi = Vc_mem.Machine.xeon_phi

let table1 ctx =
  buf_csv @@ fun buf ->
  row buf
    [ "benchmark"; "width_e5"; "width_phi"; "tasks"; "levels"; "seq_cycles"; "seq_wall_s" ];
  List.iter
    (fun (entry : Registry.entry) ->
      let r = Sweep.seq ctx entry e5 in
      row buf
        [
          entry.Registry.name;
          string_of_int (Sweep.width_on ctx entry e5);
          string_of_int (Sweep.width_on ctx entry phi);
          string_of_int r.Vc_core.Report.tasks;
          string_of_int (r.Vc_core.Report.max_depth + 1);
          Printf.sprintf "%.6e" r.Vc_core.Report.cycles;
          Printf.sprintf "%.3f" r.Vc_core.Report.wall_seconds;
        ])
    Registry.all

let table2 ctx =
  buf_csv @@ fun buf ->
  row buf
    [
      "benchmark"; "machine"; "bfs_speedup"; "bfs_oom"; "noreexp_block";
      "noreexp_speedup"; "reexp_block"; "reexp_speedup";
    ];
  List.iter
    (fun (entry : Registry.entry) ->
      List.iter
        (fun (machine : Vc_mem.Machine.t) ->
          let bfs = Sweep.bfs_only ctx entry machine in
          let blk_n, no = Sweep.best ctx entry machine ~reexpand:false in
          let blk_r, re = Sweep.best ctx entry machine ~reexpand:true in
          row buf
            [
              entry.Registry.name;
              machine.Vc_mem.Machine.name;
              Printf.sprintf "%.4f" (Sweep.speedup ctx entry machine bfs);
              string_of_bool bfs.Vc_core.Report.oom;
              string_of_int blk_n;
              Printf.sprintf "%.4f" (Sweep.speedup ctx entry machine no);
              string_of_int blk_r;
              Printf.sprintf "%.4f" (Sweep.speedup ctx entry machine re);
            ])
        Sweep.machines)
    Registry.all

let table3 ctx =
  buf_csv @@ fun buf ->
  row buf
    [ "benchmark"; "seq_vect"; "seq_nonvect"; "vec_vect"; "vec_nonvect"; "max_speedup" ];
  List.iter
    (fun name ->
      let entry = Registry.find name in
      let seq = Sweep.seq ctx entry e5 in
      let _, vec = Sweep.best ctx entry e5 ~reexpand:true in
      let r =
        Vc_core.Opportunity.analyze ~seq ~vec ~width:(Sweep.width_on ctx entry e5)
      in
      row buf
        [
          name;
          Printf.sprintf "%.4f" r.Vc_core.Opportunity.seq_vect;
          Printf.sprintf "%.4f" r.Vc_core.Opportunity.seq_nonvect;
          Printf.sprintf "%.4f" r.Vc_core.Opportunity.vec_vect;
          Printf.sprintf "%.4f" r.Vc_core.Opportunity.vec_nonvect;
          Printf.sprintf "%.4f" r.Vc_core.Opportunity.max_speedup;
        ])
    [ "nqueens"; "graphcol"; "uts"; "minmax" ]

let levels ctx ~benchmark =
  let entry = Registry.find benchmark in
  let r = Sweep.seq ctx entry e5 in
  buf_csv @@ fun buf ->
  row buf [ "level"; "tasks"; "base_tasks" ];
  Array.iteri
    (fun level (tasks, base) ->
      row buf [ string_of_int level; string_of_int tasks; string_of_int base ])
    r.Vc_core.Report.levels

let miss (r : Vc_core.Report.t) label =
  match List.assoc_opt label r.Vc_core.Report.miss_rates with
  | Some rate -> Printf.sprintf "%.6f" rate
  | None -> ""

let sweep ctx ~benchmark =
  let entry = Registry.find benchmark in
  buf_csv @@ fun buf ->
  row buf
    [
      "block"; "machine"; "strategy"; "oom"; "utilization"; "l1_miss"; "llc_miss";
      "cpi"; "speedup";
    ];
  List.iter
    (fun block ->
      List.iter
        (fun (machine : Vc_mem.Machine.t) ->
          List.iter
            (fun reexpand ->
              let r = Sweep.hybrid ctx entry machine ~reexpand ~block in
              row buf
                [
                  string_of_int block;
                  machine.Vc_mem.Machine.name;
                  (if reexpand then "reexp" else "noreexp");
                  string_of_bool r.Vc_core.Report.oom;
                  Printf.sprintf "%.4f" r.Vc_core.Report.utilization;
                  miss r "L1d";
                  (match miss r "LLC" with "" -> miss r "L2" | m -> m);
                  Printf.sprintf "%.4f" r.Vc_core.Report.cpi;
                  Printf.sprintf "%.4f" (Sweep.speedup ctx entry machine r);
                ])
            [ false; true ])
        Sweep.machines)
    (Sweep.blocks_of ctx entry)

let reexpansions ctx ~benchmark =
  let entry = Registry.find benchmark in
  let _, r = Sweep.best ctx entry e5 ~reexpand:true in
  buf_csv @@ fun buf ->
  row buf [ "level"; "reexpansions"; "mean_growth_factor" ];
  Array.iter
    (fun (level, count, factor) ->
      row buf
        [ string_of_int level; string_of_int count; Printf.sprintf "%.4f" factor ])
    r.Vc_core.Report.reexpansions

let compaction ctx =
  buf_csv @@ fun buf ->
  row buf [ "benchmark"; "machine"; "sc_speedup"; "nosc_speedup" ];
  List.iter
    (fun name ->
      let entry = Registry.find name in
      List.iter
        (fun (machine : Vc_mem.Machine.t) ->
          let block, _ = Sweep.best ctx entry machine ~reexpand:true in
          let default =
            Vc_simd.Compact.default_for machine.Vc_mem.Machine.isa
              ~width:(Sweep.width_on ctx entry machine)
          in
          let sc = Sweep.with_compaction ctx entry machine ~compact:default ~block in
          let nosc =
            Sweep.with_compaction ctx entry machine
              ~compact:Vc_simd.Compact.Sequential ~block
          in
          row buf
            [
              name;
              machine.Vc_mem.Machine.name;
              Printf.sprintf "%.4f" (Sweep.speedup ctx entry machine sc);
              Printf.sprintf "%.4f" (Sweep.speedup ctx entry machine nosc);
            ])
        Sweep.machines)
    [ "fib"; "nqueens" ]

let export_all ctx ~dir =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let write name contents =
    let path = Filename.concat dir name in
    let oc = open_out path in
    Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () ->
        output_string oc contents);
    name
  in
  let files =
    [
      write "table1.csv" (table1 ctx);
      write "table2.csv" (table2 ctx);
      write "table3.csv" (table3 ctx);
      write "figure16_compaction.csv" (compaction ctx);
    ]
    @ List.map
        (fun (entry : Registry.entry) ->
          write
            (Printf.sprintf "figure9_levels_%s.csv" entry.Registry.name)
            (levels ctx ~benchmark:entry.Registry.name))
        Registry.all
    @ List.map
        (fun (entry : Registry.entry) ->
          write
            (Printf.sprintf "sweep_%s.csv" entry.Registry.name)
            (sweep ctx ~benchmark:entry.Registry.name))
        Registry.all
    @ List.map
        (fun name ->
          write
            (Printf.sprintf "figure15_reexpansion_%s.csv" name)
            (reexpansions ctx ~benchmark:name))
        [ "fib"; "parentheses"; "nqueens"; "graphcol" ]
  in
  files
