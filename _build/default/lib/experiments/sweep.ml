open Vc_bench

type key = {
  bench : string;
  machine : string;
  strategy : string;
  block : int;
  compact : string;
}

type ctx = {
  quick : bool;
  specs : (string, Vc_core.Spec.t) Hashtbl.t;
  runs : (key, Vc_core.Report.t) Hashtbl.t;
}

let create ?quick () =
  let quick =
    match quick with
    | Some q -> q
    | None -> (
        match Sys.getenv_opt "VC_BENCH_QUICK" with
        | Some ("1" | "true" | "yes") -> true
        | _ -> false)
  in
  { quick; specs = Hashtbl.create 16; runs = Hashtbl.create 256 }

let quick ctx = ctx.quick

let machines = [ Vc_mem.Machine.xeon_e5; Vc_mem.Machine.xeon_phi ]

(* Small workloads for smoke runs and the bechamel harness. *)
let quick_spec name =
  match name with
  | "knapsack" -> Knapsack.spec { Knapsack.n = 13; capacity_ratio = 0.5; seed = 1 }
  | "fib" -> Fib.spec { Fib.n = 20 }
  | "parentheses" -> Parentheses.spec { Parentheses.pairs = 9 }
  | "nqueens" -> Nqueens.spec { Nqueens.n = 9 }
  | "graphcol" ->
      Graphcol.spec { Graphcol.vertices = 16; edges = 28; colors = 3; seed = 7 }
  | "uts" -> Uts.spec { Uts.b0 = 64; m = 4; q = 0.24; seed = 5 }
  | "binomial" -> Binomial.spec { Binomial.n = 16; k = 7 }
  | "minmax" -> Minmax.spec { Minmax.size = 3 }
  | _ -> invalid_arg ("Sweep.quick_spec: unknown benchmark " ^ name)

let spec_of ctx (entry : Registry.entry) =
  match Hashtbl.find_opt ctx.specs entry.Registry.name with
  | Some spec -> spec
  | None ->
      let spec =
        if ctx.quick then quick_spec entry.Registry.name else entry.Registry.spec ()
      in
      Hashtbl.add ctx.specs entry.Registry.name spec;
      spec

let width_on ctx entry (machine : Vc_mem.Machine.t) =
  let spec = spec_of ctx entry in
  Vc_simd.Isa.lanes machine.Vc_mem.Machine.isa
    (Vc_core.Schema.lane_kind spec.Vc_core.Spec.schema)

let blocks_of ctx (entry : Registry.entry) =
  if ctx.quick then
    List.filter (fun b -> b <= 4096) entry.Registry.sweep_blocks
  else entry.Registry.sweep_blocks

let cached ctx key f =
  match Hashtbl.find_opt ctx.runs key with
  | Some r -> r
  | None ->
      let r = f () in
      Hashtbl.add ctx.runs key r;
      r

let seq ctx entry (machine : Vc_mem.Machine.t) =
  let key =
    {
      bench = entry.Registry.name;
      machine = machine.Vc_mem.Machine.name;
      strategy = "seq";
      block = 0;
      compact = "";
    }
  in
  cached ctx key (fun () -> Vc_core.Seq_exec.run ~spec:(spec_of ctx entry) ~machine ())

let bfs_only ctx entry (machine : Vc_mem.Machine.t) =
  let key =
    {
      bench = entry.Registry.name;
      machine = machine.Vc_mem.Machine.name;
      strategy = "bfs";
      block = 0;
      compact = "";
    }
  in
  cached ctx key (fun () ->
      Vc_core.Engine.run ~spec:(spec_of ctx entry) ~machine
        ~strategy:Vc_core.Policy.Bfs_only ())

let hybrid ctx entry (machine : Vc_mem.Machine.t) ~reexpand ~block =
  let key =
    {
      bench = entry.Registry.name;
      machine = machine.Vc_mem.Machine.name;
      strategy = (if reexpand then "reexp" else "noreexp");
      block;
      compact = "";
    }
  in
  cached ctx key (fun () ->
      Vc_core.Engine.run ~spec:(spec_of ctx entry) ~machine
        ~strategy:(Vc_core.Policy.Hybrid { max_block = block; reexpand })
        ())

let with_compaction ctx entry (machine : Vc_mem.Machine.t) ~compact ~block =
  let key =
    {
      bench = entry.Registry.name;
      machine = machine.Vc_mem.Machine.name;
      strategy = "reexp";
      block;
      compact = Vc_simd.Compact.name compact;
    }
  in
  cached ctx key (fun () ->
      Vc_core.Engine.run ~compact ~spec:(spec_of ctx entry) ~machine
        ~strategy:(Vc_core.Policy.Hybrid { max_block = block; reexpand = true })
        ())

let strawman ctx entry (machine : Vc_mem.Machine.t) =
  let key =
    {
      bench = entry.Registry.name;
      machine = machine.Vc_mem.Machine.name;
      strategy = "strawman";
      block = 0;
      compact = "";
    }
  in
  cached ctx key (fun () -> Vc_core.Strawman.run ~spec:(spec_of ctx entry) ~machine ())

let speedup ctx entry machine report =
  Vc_core.Report.speedup ~baseline:(seq ctx entry machine) report

let best ctx entry machine ~reexpand =
  let candidates =
    List.map
      (fun block ->
        let r = hybrid ctx entry machine ~reexpand ~block in
        (block, r, speedup ctx entry machine r))
      (blocks_of ctx entry)
  in
  match candidates with
  | [] -> invalid_arg "Sweep.best: empty block grid"
  | first :: rest ->
      let block, report, _ =
        List.fold_left
          (fun (bb, br, bs) (block, r, s) ->
            if s > bs then (block, r, s) else (bb, br, bs))
          first rest
      in
      (block, report)
