(** CSV export of every reproduced artifact, for external plotting.

    Each function renders one artifact as CSV text (header row first);
    {!export_all} writes the full set into a directory.  All data comes
    from the shared {!Sweep} cache. *)

val table1 : Sweep.ctx -> string
val table2 : Sweep.ctx -> string
val table3 : Sweep.ctx -> string

val levels : Sweep.ctx -> benchmark:string -> string
(** Fig. 9 series: level, tasks, base. *)

val sweep : Sweep.ctx -> benchmark:string -> string
(** The block-size sweep behind Figs. 10–14: one row per block size with
    utilization, L1/LLC (or L2) miss rates, CPI, and speedup for both
    strategies on both machines. *)

val reexpansions : Sweep.ctx -> benchmark:string -> string
(** Fig. 15 series: level, count, mean growth factor. *)

val compaction : Sweep.ctx -> string
(** Fig. 16: benchmark, machine, speedup with/without vectorized stream
    compaction. *)

val export_all : Sweep.ctx -> dir:string -> string list
(** Write every artifact into [dir] (created if missing); returns the file
    names written. *)
