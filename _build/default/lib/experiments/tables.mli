(** Regeneration of the paper's tables (§6).

    Each function prints one table's reproduction to the formatter; numbers
    come from the shared {!Sweep} context, so repeated calls are cheap. *)

val table1 : Sweep.ctx -> Format.formatter -> unit
(** Benchmark characterization: problem, vector widths, #levels, #tasks,
    sequential baseline (modeled cycles + host wall time). *)

val table2 : Sweep.ctx -> Format.formatter -> unit
(** Best block size and modeled speedup for breadth-first only, hybrid
    without re-expansion, and re-expansion, on both machines, plus the
    geometric means. *)

val table3 : Sweep.ctx -> Format.formatter -> unit
(** Opportunity analysis for the large-kernel benchmarks (nqueens,
    graphcol, uts, minmax). *)
