open Vc_bench

let log2i n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let pow_str block = Printf.sprintf "2^%d" (log2i block)

let geomean = function
  | [] -> 0.0
  | xs ->
      exp (List.fold_left (fun acc x -> acc +. log (max x 1e-9)) 0.0 xs
           /. float_of_int (List.length xs))

let table1 ctx fmt =
  Format.fprintf fmt
    "@[<v>Table 1: benchmark characterization (scaled inputs; see DESIGN.md)@,@,";
  Format.fprintf fmt "%-12s %-38s %6s %6s %10s %6s %12s %10s@," "benchmark"
    "problem" "wE5" "wPhi" "#task" "#lev" "seq cycles" "seq wall";
  List.iter
    (fun (entry : Registry.entry) ->
      let spec = Sweep.spec_of ctx entry in
      let r = Sweep.seq ctx entry Vc_mem.Machine.xeon_e5 in
      Format.fprintf fmt "%-12s %-38s %6d %6d %10d %6d %12.3e %9.2fs@,"
        entry.Registry.name spec.Vc_core.Spec.description
        (Sweep.width_on ctx entry Vc_mem.Machine.xeon_e5)
        (Sweep.width_on ctx entry Vc_mem.Machine.xeon_phi)
        r.Vc_core.Report.tasks
        (r.Vc_core.Report.max_depth + 1)
        r.Vc_core.Report.cycles r.Vc_core.Report.wall_seconds)
    Registry.all;
  Format.fprintf fmt "@]@."

let table2 ctx fmt =
  Format.fprintf fmt
    "@[<v>Table 2: best block size and modeled speedup per strategy@,\
     (speedup = sequential cycles / strategy cycles; OOM = breadth-first \
     expansion@,exceeded the machine's live-thread limit)@,@,";
  Format.fprintf fmt "%-12s | %9s %7s %9s %7s %9s | %9s %7s %9s %7s %9s@,"
    "benchmark" "E5:bfs" "blk" "noreexp" "blk" "reexp" "Phi:bfs" "blk" "noreexp"
    "blk" "reexp";
  let per_machine machine entry =
    let bfs = Sweep.bfs_only ctx entry machine in
    let bfs_str =
      if bfs.Vc_core.Report.oom then "OOM"
      else Printf.sprintf "%.2f" (Sweep.speedup ctx entry machine bfs)
    in
    let blk_n, no = Sweep.best ctx entry machine ~reexpand:false in
    let blk_r, re = Sweep.best ctx entry machine ~reexpand:true in
    ( bfs_str,
      pow_str blk_n,
      Sweep.speedup ctx entry machine no,
      pow_str blk_r,
      Sweep.speedup ctx entry machine re )
  in
  let rows =
    List.map
      (fun entry ->
        (entry.Registry.name,
         per_machine Vc_mem.Machine.xeon_e5 entry,
         per_machine Vc_mem.Machine.xeon_phi entry))
      Registry.all
  in
  List.iter
    (fun (name, (b1, n1, s1, r1, t1), (b2, n2, s2, r2, t2)) ->
      Format.fprintf fmt "%-12s | %9s %7s %9.2f %7s %9.2f | %9s %7s %9.2f %7s %9.2f@,"
        name b1 n1 s1 r1 t1 b2 n2 s2 r2 t2)
    rows;
  let gm f = geomean (List.map f rows) in
  Format.fprintf fmt "%-12s | %9s %7s %9.2f %7s %9.2f | %9s %7s %9.2f %7s %9.2f@,"
    "geomean" "" ""
    (gm (fun (_, (_, _, s, _, _), _) -> s))
    ""
    (gm (fun (_, (_, _, _, _, t), _) -> t))
    "" ""
    (gm (fun (_, _, (_, _, s, _, _)) -> s))
    ""
    (gm (fun (_, _, (_, _, _, _, t)) -> t));
  Format.fprintf fmt "@]@."

let table3 ctx fmt =
  Format.fprintf fmt
    "@[<v>Table 3: opportunity analysis (instruction fractions normalized to@,\
     the sequential run; modeled max speedup assumes perfect kernel@,\
     vectorization)@,@,";
  Format.fprintf fmt "%-12s %10s %10s %12s %10s %12s@," "benchmark" "seq:vect"
    "non-vect" "vec:vect" "non-vect" "max speedup";
  List.iter
    (fun name ->
      let entry = Registry.find name in
      let machine = Vc_mem.Machine.xeon_e5 in
      let seq = Sweep.seq ctx entry machine in
      let _, vec = Sweep.best ctx entry machine ~reexpand:true in
      let width = Sweep.width_on ctx entry machine in
      let row = Vc_core.Opportunity.analyze ~seq ~vec ~width in
      Format.fprintf fmt "%-12s %10.2f %10.2f %12.2f %10.2f %12.2f@," name
        row.Vc_core.Opportunity.seq_vect row.Vc_core.Opportunity.seq_nonvect
        row.Vc_core.Opportunity.vec_vect row.Vc_core.Opportunity.vec_nonvect
        row.Vc_core.Opportunity.max_speedup)
    [ "nqueens"; "graphcol"; "uts"; "minmax" ];
  Format.fprintf fmt "@]@."
