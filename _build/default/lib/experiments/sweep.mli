(** Memoized execution of benchmark × machine × strategy × block-size
    points.

    Every table and figure of the evaluation reads from the same sweep
    space, so one context computes each point once and the harness reuses
    it across Tables 1–3 and Figures 9–16.  [quick] mode substitutes
    small workloads (for smoke runs and the bechamel timing harness). *)

type ctx

val create : ?quick:bool -> unit -> ctx
(** [quick] defaults to the [VC_BENCH_QUICK] environment variable. *)

val quick : ctx -> bool

val machines : Vc_mem.Machine.t list
(** E5 and Phi, in that order. *)

val spec_of : ctx -> Vc_bench.Registry.entry -> Vc_core.Spec.t
(** The entry's spec at this context's scale (cached). *)

val width_on : ctx -> Vc_bench.Registry.entry -> Vc_mem.Machine.t -> int
(** SIMD lanes the benchmark's lane kind yields on the machine (Table 1's
    vector widths). *)

val blocks_of : ctx -> Vc_bench.Registry.entry -> int list
(** The block-size grid swept for this benchmark. *)

val seq : ctx -> Vc_bench.Registry.entry -> Vc_mem.Machine.t -> Vc_core.Report.t

val bfs_only : ctx -> Vc_bench.Registry.entry -> Vc_mem.Machine.t -> Vc_core.Report.t

val hybrid :
  ctx ->
  Vc_bench.Registry.entry ->
  Vc_mem.Machine.t ->
  reexpand:bool ->
  block:int ->
  Vc_core.Report.t

val with_compaction :
  ctx ->
  Vc_bench.Registry.entry ->
  Vc_mem.Machine.t ->
  compact:Vc_simd.Compact.engine ->
  block:int ->
  Vc_core.Report.t
(** Re-expansion strategy with an explicit compaction engine (Fig. 16). *)

val strawman : ctx -> Vc_bench.Registry.entry -> Vc_mem.Machine.t -> Vc_core.Report.t

val speedup : ctx -> Vc_bench.Registry.entry -> Vc_mem.Machine.t -> Vc_core.Report.t -> float
(** Modeled speedup over the same benchmark's sequential run on the same
    machine. *)

val best :
  ctx ->
  Vc_bench.Registry.entry ->
  Vc_mem.Machine.t ->
  reexpand:bool ->
  int * Vc_core.Report.t
(** (block size, report) maximizing modeled speedup over the grid. *)
