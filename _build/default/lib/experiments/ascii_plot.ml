type series = { label : string; marker : char; points : (float * float) list }

let plot ?(width = 64) ?(height = 16) ?(x_label = "") ?(y_label = "") series fmt =
  let series = List.filter (fun s -> s.points <> []) series in
  if series = [] then Format.fprintf fmt "(no data to plot)@."
  else begin
    let all = List.concat_map (fun s -> s.points) series in
    let xs = List.map fst all and ys = List.map snd all in
    let fmin = List.fold_left min infinity and fmax = List.fold_left max neg_infinity in
    let x0 = fmin xs and x1 = fmax xs in
    let y0 = min 0.0 (fmin ys) and y1 = fmax ys in
    let x1 = if x1 = x0 then x0 +. 1.0 else x1 in
    let y1 = if y1 = y0 then y0 +. 1.0 else y1 in
    let grid = Array.make_matrix height width ' ' in
    let place x y marker =
      let col =
        int_of_float ((x -. x0) /. (x1 -. x0) *. float_of_int (width - 1) +. 0.5)
      in
      let row =
        height - 1
        - int_of_float ((y -. y0) /. (y1 -. y0) *. float_of_int (height - 1) +. 0.5)
      in
      if row >= 0 && row < height && col >= 0 && col < width then
        grid.(row).(col) <- marker
    in
    List.iter (fun s -> List.iter (fun (x, y) -> place x y s.marker) s.points) series;
    Format.fprintf fmt "@[<v>";
    if y_label <> "" then Format.fprintf fmt "%s@," y_label;
    Array.iteri
      (fun row line ->
        let y_at_row =
          y1 -. (float_of_int row /. float_of_int (height - 1) *. (y1 -. y0))
        in
        Format.fprintf fmt "%8.2f |%s@," y_at_row (String.init width (Array.get line)))
      grid;
    Format.fprintf fmt "%8s +%s@," "" (String.make width '-');
    Format.fprintf fmt "%8s  %-8.2f%*.2f  %s@," "" x0 (width - 8) x1 x_label;
    List.iter (fun s -> Format.fprintf fmt "%8s  %c = %s@," "" s.marker s.label) series;
    Format.fprintf fmt "@]"
  end
