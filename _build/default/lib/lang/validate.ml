open Ast

type info = { num_spawns : int; locals : string list }

exception Invalid of string list

type ty = TInt | TBool

let ty_name = function TInt -> "int" | TBool -> "bool"

module StringSet = Set.Make (String)

type ctx = {
  program : program;
  mutable errors : string list;
  mutable locals : string list;  (* reversed first-assignment order *)
}

let err ctx fmt = Printf.ksprintf (fun s -> ctx.errors <- s :: ctx.errors) fmt

let note_local ctx name =
  if not (List.mem name ctx.locals) then ctx.locals <- name :: ctx.locals

let rec dup = function
  | [] -> None
  | x :: rest -> if List.mem x rest then Some x else dup rest

(* Type-check an expression, treating all variables as ints (Fig. 2 values
   are plain values; booleans exist only transiently in conditions). *)
let rec type_of ctx assigned e : ty =
  match e with
  | Int _ -> TInt
  | Bool _ -> TBool
  | Var name ->
      if not (StringSet.mem name assigned) then
        err ctx "variable %s may be used before assignment" name;
      TInt
  | Unop (Neg, e) ->
      expect ctx assigned e TInt "operand of unary -";
      TInt
  | Unop (Not, e) ->
      expect ctx assigned e TBool "operand of !";
      TBool
  | Binop (op, a, b) -> (
      match op with
      | Add | Sub | Mul | Div | Mod | Band | Bor | Bxor | Shl | Shr ->
          expect ctx assigned a TInt "arithmetic operand";
          expect ctx assigned b TInt "arithmetic operand";
          TInt
      | Lt | Le | Gt | Ge | Eq | Ne ->
          expect ctx assigned a TInt "comparison operand";
          expect ctx assigned b TInt "comparison operand";
          TBool
      | And | Or ->
          expect ctx assigned a TBool "logical operand";
          expect ctx assigned b TBool "logical operand";
          TBool)
  | Call (name, args) -> (
      match Builtins.find name with
      | None ->
          err ctx "unknown builtin function %s" name;
          TInt
      | Some fn ->
          if List.length args <> fn.Builtins.arity then
            err ctx "builtin %s expects %d arguments, got %d" name fn.Builtins.arity
              (List.length args);
          List.iter (fun a -> expect ctx assigned a TInt "builtin argument") args;
          TInt)

and expect ctx assigned e ty what =
  let actual = type_of ctx assigned e in
  if actual <> ty then
    err ctx "%s must be %s but is %s" what (ty_name ty) (ty_name actual)

(* Walk a statement in the given phase, threading the definitely-assigned
   set.  Returns the assigned set after the statement (for straight-line
   flow). *)
type phase = Base | Inductive

let rec check_stmt ctx phase assigned stmt =
  match stmt with
  | Skip | Return -> assigned
  | Seq (a, b) ->
      let assigned = check_stmt ctx phase assigned a in
      check_stmt ctx phase assigned b
  | Assign (name, e) ->
      if List.mem name ctx.program.mth.params then
        err ctx "assignment to parameter %s (locals only)" name;
      expect ctx assigned e TInt "assigned value";
      note_local ctx name;
      StringSet.add name assigned
  | If (cond, a, b) ->
      expect ctx assigned cond TBool "if condition";
      let after_a = check_stmt ctx phase assigned a in
      let after_b = check_stmt ctx phase assigned b in
      StringSet.inter after_a after_b
  | While (cond, body) ->
      expect ctx assigned cond TBool "while condition";
      if List.exists (fun _ -> true) (Ast.spawn_sites body) then
        err ctx "spawn under while: spawn count must be statically bounded";
      ignore (check_stmt ctx phase assigned body : StringSet.t);
      assigned
  | Reduce (name, e) ->
      if phase <> Base then err ctx "reduce outside the base case";
      if not (List.exists (fun r -> r.red_name = name) ctx.program.reducers) then
        err ctx "reduce on undeclared reducer %s" name;
      expect ctx assigned e TInt "reduced value";
      assigned
  | Spawn { spawn_id = _; spawn_args } ->
      if phase <> Inductive then err ctx "spawn outside the inductive case";
      let arity = List.length ctx.program.mth.params in
      if List.length spawn_args <> arity then
        err ctx "spawn passes %d arguments but %s has %d parameters"
          (List.length spawn_args) ctx.program.mth.name arity;
      List.iter (fun a -> expect ctx assigned a TInt "spawn argument") spawn_args;
      assigned

let check program =
  let ctx = { program; errors = []; locals = [] } in
  let m = program.mth in
  (match dup m.params with
  | Some p -> err ctx "duplicate parameter %s" p
  | None -> ());
  (match dup (List.map (fun r -> r.red_name) program.reducers) with
  | Some r -> err ctx "duplicate reducer %s" r
  | None -> ());
  let params_assigned = StringSet.of_list m.params in
  expect ctx params_assigned m.is_base TBool "base-case conditional";
  ignore (check_stmt ctx Base params_assigned m.base : StringSet.t);
  ignore (check_stmt ctx Inductive params_assigned m.inductive : StringSet.t);
  let sites = Ast.spawn_sites m.inductive in
  List.iteri
    (fun i sp ->
      if sp.spawn_id <> i then
        err ctx "spawn id %d out of order (expected %d)" sp.spawn_id i)
    sites;
  match ctx.errors with
  | [] -> Ok { num_spawns = List.length sites; locals = List.rev ctx.locals }
  | errors -> Error (List.rev errors)

let check_exn program =
  match check program with Ok info -> info | Error errors -> raise (Invalid errors)
