(** Standard scalar optimizations over the Fig. 2 language.

    The paper's pipeline hands the blocked code to an optimizing compiler
    (icc) and relies on "loop distribution, inlining, if-conversion, and
    other standard compiler transformations" (§4.1).  This module supplies
    the scalar end of that pipeline for the DSL: constant folding,
    algebraic simplification, branch folding, and dead-code elimination.
    All passes preserve semantics — checked by property tests running
    optimized and original programs side by side — including the language's
    short-circuit evaluation and division-by-zero behaviour. *)

val can_trap : Ast.expr -> bool
(** Whether evaluating the expression can raise at run time (it contains a
    division or modulo; builtins are total).  Trap-free expressions are
    pure and may be deleted or absorbed by identities. *)

val fold_expr : Ast.expr -> Ast.expr
(** Constant folding and algebraic identities ([e+0], [e*1], [e*0] when
    [e] is pure, [!!e], double negation, constant comparisons and
    short-circuits).  Division and modulo by a constant zero are left in
    place (they must still trap at run time). *)

val fold_stmt : Ast.stmt -> Ast.stmt
(** {!fold_expr} everywhere, plus branch folding ([if true/false]),
    [while false] elimination, and [Seq]/[Skip] normalization. *)

val dead_locals : Ast.mth -> Ast.mth
(** Remove assignments to locals that are never read afterwards.
    Conservative: an assignment whose right-hand side can trap (division
    or modulo) is kept. *)

val program : Ast.program -> Ast.program
(** The full pipeline: fold, branch-fold, eliminate dead locals, iterated
    to a fixed point. *)
