(** Sequential reference interpreter: the "normal sequential execution"
    of the paper — a depth-first walk of the computation tree (§1).

    Every transformed execution strategy must produce exactly the reducer
    values this interpreter produces; the test suite enforces that on the
    eight benchmarks and on randomly generated programs. *)

exception Runtime_error of string
(** Division by zero, unknown variable at run time, etc. *)

exception Task_limit_exceeded of int

type outcome = {
  reducers : (string * int) list;  (** final reducer values, decl order *)
  profile : Profile.t;
}

val run : ?max_tasks:int -> Ast.program -> int list -> outcome
(** [run p args] executes the program's method on the given arguments
    (arity-checked).  [max_tasks] (default 50M) guards non-terminating
    programs. *)

val run_validated : ?max_tasks:int -> Ast.program -> int list -> outcome
(** Like {!run} but [Validate.check_exn] first. *)
