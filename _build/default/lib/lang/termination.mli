(** A termination certifier for DSL programs.

    The language's computation trees must be finite for any execution
    strategy to terminate; this pass certifies the common pattern where
    some parameter strictly decreases at every spawn site and the base
    condition guarantees a lower bound (fib-like recursion), giving a
    ranking function.

    The analysis is deliberately syntactic and sound-but-incomplete:
    {!Terminates} is a proof, {!Unknown} says nothing (binomial and
    parentheses terminate for subtler reasons it does not capture). *)

type certificate = {
  param : string;  (** the ranking parameter *)
  decreases_by : int;  (** minimal decrease across spawn sites (≥ 1) *)
  lower_bound : int;  (** inductive case implies [param >= lower_bound] *)
}

type verdict = Terminates of certificate | Unknown of string

val check : Ast.program -> verdict
(** Looks for a parameter [p] such that (a) every spawn site passes
    [p - c] (a syntactic subtraction of a positive constant, after
    constant folding) in [p]'s position, and (b) some disjunct of the
    base condition has the form [p < k] / [p <= k] (in either
    orientation), so the inductive case implies [p >= k].  Programs are
    validated first; invalid programs yield {!Unknown}. *)

val pp_verdict : Format.formatter -> verdict -> unit
