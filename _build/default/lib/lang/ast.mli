(** Abstract syntax of the recursive task-parallel language (paper Fig. 2).

    The language is a Cilk variant: a single self-recursive method whose
    body is an [if] choosing between a {e base case} (may [reduce] into
    global reducer objects, in lieu of return values) and an {e inductive
    case} (may [spawn] recursive tasks).  Spawned tasks are independent of
    all subsequent work in the spawning method; there is an implicit sync
    at method end and no work after it.

    One statement type serves both cases; {!Validate} enforces the Fig. 2
    phase discipline ([reduce] only in base statements, [spawn] only in
    inductive statements) plus scoping, typing, and the static bound on
    spawn count. *)

type unop = Neg | Not

type binop =
  | Add | Sub | Mul | Div | Mod
  | Lt | Le | Gt | Ge | Eq | Ne
  | And | Or
  | Band | Bor | Bxor | Shl | Shr

type expr =
  | Int of int
  | Bool of bool
  | Var of string  (** parameter or local *)
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Call of string * expr list  (** stateless builtin function *)

type stmt =
  | Skip  (** no-op (an empty block / missing else branch) *)
  | Return
  | Seq of stmt * stmt
  | Assign of string * expr
  | If of expr * stmt * stmt
  | While of expr * stmt
  | Reduce of string * expr  (** base case only *)
  | Spawn of spawn  (** inductive case only *)

and spawn = {
  spawn_id : int;  (** consecutive per method, in syntactic order (§4.4) *)
  spawn_args : expr list;
}

type mth = {
  name : string;
  params : string list;
  is_base : expr;  (** the [e_b] conditional of Fig. 2 *)
  base : stmt;
  inductive : stmt;
}

type reducer_decl = { red_name : string; red_op : Reducer.op }

type program = { reducers : reducer_decl list; mth : mth }

(** {1 Convenience constructors} *)

val seq : stmt list -> stmt
(** Right-fold a statement list with {!Seq}; [seq [] = Skip]. *)

val num_spawns : program -> int
(** Number of spawn sites in the method body — the expansion factor [e] of
    §4.3.  Purely syntactic. *)

val spawn_sites : stmt -> spawn list
(** All spawn sites in syntactic order. *)

val equal_expr : expr -> expr -> bool
val equal_stmt : stmt -> stmt -> bool

val expr_size : expr -> int
(** Number of AST nodes — the static instruction-weight estimate used by
    the cost model for DSL-compiled specs. *)

val stmt_size : stmt -> int
(** Like {!expr_size}; spawn sites count their argument expressions plus
    one enqueue operation. *)
