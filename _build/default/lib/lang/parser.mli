(** Recursive-descent parser for the concrete syntax.

    Grammar (EBNF; see README for examples):
    {v
    program  ::= reducer* method
    reducer  ::= "reducer" op ident ";"          op ::= "sum" | "min" | "max"
    method   ::= "def" ident "(" params ")" "="
                 "if" expr "then" block "else" block
    block    ::= "{" stmt* "}"
    stmt     ::= "return" ";"
               | ident ":=" expr ";"
               | "if" expr "then" block "else" block
               | "while" expr block
               | "reduce" "(" ident "," expr ")" ";"
               | "spawn" ident "(" args ")" ";"
    expr     ::= precedence climbing, loosest to tightest:
                 or, and, comparisons, additive, multiplicative, unary
    v}

    Spawn sites receive consecutive ids in syntactic order, as required by
    the rewrite rules of the paper's §4.4. *)

exception Error of string * int * int
(** message, line, column *)

val program_of_tokens : Token.located list -> Ast.program
val parse_string : string -> Ast.program

val parse_file : string -> Ast.program
(** Raises [Sys_error] if unreadable, {!Error} or [Lexer.Error] on bad
    input. *)

val expr_of_string : string -> Ast.expr
(** Parse a single expression (testing convenience). *)
