type unop = Neg | Not

type binop =
  | Add | Sub | Mul | Div | Mod
  | Lt | Le | Gt | Ge | Eq | Ne
  | And | Or
  | Band | Bor | Bxor | Shl | Shr

type expr =
  | Int of int
  | Bool of bool
  | Var of string
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Call of string * expr list

type stmt =
  | Skip
  | Return
  | Seq of stmt * stmt
  | Assign of string * expr
  | If of expr * stmt * stmt
  | While of expr * stmt
  | Reduce of string * expr
  | Spawn of spawn

and spawn = { spawn_id : int; spawn_args : expr list }

type mth = {
  name : string;
  params : string list;
  is_base : expr;
  base : stmt;
  inductive : stmt;
}

type reducer_decl = { red_name : string; red_op : Reducer.op }

type program = { reducers : reducer_decl list; mth : mth }

let seq stmts = List.fold_right (fun s acc -> if acc = Skip then s else Seq (s, acc)) stmts Skip

let rec spawn_sites = function
  | Skip | Return | Assign _ | Reduce _ -> []
  | Seq (a, b) -> spawn_sites a @ spawn_sites b
  | If (_, a, b) -> spawn_sites a @ spawn_sites b
  | While (_, s) -> spawn_sites s
  | Spawn sp -> [ sp ]

let num_spawns p = List.length (spawn_sites p.mth.inductive)

let equal_expr (a : expr) (b : expr) = a = b
let equal_stmt (a : stmt) (b : stmt) = a = b

let rec expr_size = function
  | Int _ | Bool _ | Var _ -> 1
  | Unop (_, e) -> 1 + expr_size e
  | Binop (_, a, b) -> 1 + expr_size a + expr_size b
  | Call (_, args) -> 1 + List.fold_left (fun acc a -> acc + expr_size a) 0 args

let rec stmt_size = function
  | Skip -> 0
  | Return -> 1
  | Seq (a, b) -> stmt_size a + stmt_size b
  | Assign (_, e) -> 1 + expr_size e
  | If (c, a, b) -> 1 + expr_size c + stmt_size a + stmt_size b
  | While (c, s) -> 1 + expr_size c + stmt_size s
  | Reduce (_, e) -> 1 + expr_size e
  | Spawn { spawn_args; _ } ->
      1 + List.fold_left (fun acc a -> acc + expr_size a) 0 spawn_args
