(** Static checks enforcing the Fig. 2 discipline.

    Checks, in order:
    - duplicate parameter / reducer names;
    - [reduce] appears only in the base case, on a declared reducer;
    - [spawn] appears only in the inductive case, with arity matching the
      method's parameters, and ids consecutive in syntactic order;
    - spawn count is statically bounded (no [spawn] under [while] — the
      paper assumes a static bound, §2 fn. 1);
    - assignments target locals, never parameters;
    - every variable use is definitely assigned (params always are; locals
      via a may-fail dataflow pass: [Seq] propagates, [If] intersects the
      branches, [While] bodies guarantee nothing);
    - simple type correctness: conditions are booleans, arithmetic and
      reduce/spawn arguments are integers, builtin calls exist with the
      right arity. *)

type info = {
  num_spawns : int;  (** the expansion factor e of §4.3 *)
  locals : string list;  (** all assigned locals, in first-assignment order *)
}

val check : Ast.program -> (info, string list) result
(** All violations found, not just the first. *)

exception Invalid of string list

val check_exn : Ast.program -> info
(** Raises {!Invalid} with the violation list. *)
