type t =
  | INT of int
  | IDENT of string
  | KW_DEF
  | KW_IF
  | KW_THEN
  | KW_ELSE
  | KW_WHILE
  | KW_RETURN
  | KW_REDUCE
  | KW_SPAWN
  | KW_REDUCER
  | KW_TRUE
  | KW_FALSE
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | COMMA
  | SEMI
  | ASSIGN
  | EQUALS
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | LT | LE | GT | GE | EQEQ | NE
  | ANDAND | OROR | BANG
  | AMP | PIPE | CARET | SHL | SHR
  | EOF

let to_string = function
  | INT n -> string_of_int n
  | IDENT s -> s
  | KW_DEF -> "def"
  | KW_IF -> "if"
  | KW_THEN -> "then"
  | KW_ELSE -> "else"
  | KW_WHILE -> "while"
  | KW_RETURN -> "return"
  | KW_REDUCE -> "reduce"
  | KW_SPAWN -> "spawn"
  | KW_REDUCER -> "reducer"
  | KW_TRUE -> "true"
  | KW_FALSE -> "false"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | COMMA -> ","
  | SEMI -> ";"
  | ASSIGN -> ":="
  | EQUALS -> "="
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | PERCENT -> "%"
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | EQEQ -> "=="
  | NE -> "!="
  | ANDAND -> "&&"
  | OROR -> "||"
  | BANG -> "!"
  | AMP -> "&"
  | PIPE -> "|"
  | CARET -> "^"
  | SHL -> "<<"
  | SHR -> ">>"
  | EOF -> "<eof>"

type located = { token : t; line : int; col : int }
