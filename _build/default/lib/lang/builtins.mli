(** Stateless, non-recursive functions callable from expressions.

    Fig. 2 allows expressions to call "arbitrary, stateless, non-recursive
    functions" ([f_p]).  This registry provides a fixed library of such
    functions over integers. *)

type fn = { arity : int; apply : int array -> int }

val find : string -> fn option

val names : string list
(** All registered builtin names. *)
