{
open Token

exception Error of string * int * int
(** message, line, column *)

let keyword = function
  | "def" -> KW_DEF
  | "if" -> KW_IF
  | "then" -> KW_THEN
  | "else" -> KW_ELSE
  | "while" -> KW_WHILE
  | "return" -> KW_RETURN
  | "reduce" -> KW_REDUCE
  | "spawn" -> KW_SPAWN
  | "reducer" -> KW_REDUCER
  | "true" -> KW_TRUE
  | "false" -> KW_FALSE
  | id -> IDENT id

let pos lexbuf =
  let p = Lexing.lexeme_start_p lexbuf in
  (p.Lexing.pos_lnum, p.Lexing.pos_cnum - p.Lexing.pos_bol)
}

let digit = ['0'-'9']
let ident_start = ['a'-'z' 'A'-'Z' '_']
let ident_char = ident_start | digit

rule token = parse
  | [' ' '\t' '\r']+    { token lexbuf }
  | '\n'                { Lexing.new_line lexbuf; token lexbuf }
  | "//" [^ '\n']*      { token lexbuf }
  | "/*"                { comment (pos lexbuf) lexbuf; token lexbuf }
  | digit+ as n         { INT (int_of_string n) }
  | ident_start ident_char* as id { keyword id }
  | ":="                { ASSIGN }
  | "=="                { EQEQ }
  | "!="                { NE }
  | "<="                { LE }
  | ">="                { GE }
  | "<<"                { SHL }
  | ">>"                { SHR }
  | "&&"                { ANDAND }
  | "||"                { OROR }
  | "("                 { LPAREN }
  | ")"                 { RPAREN }
  | "{"                 { LBRACE }
  | "}"                 { RBRACE }
  | ","                 { COMMA }
  | ";"                 { SEMI }
  | "="                 { EQUALS }
  | "+"                 { PLUS }
  | "-"                 { MINUS }
  | "*"                 { STAR }
  | "/"                 { SLASH }
  | "%"                 { PERCENT }
  | "<"                 { LT }
  | ">"                 { GT }
  | "!"                 { BANG }
  | "&"                 { AMP }
  | "|"                 { PIPE }
  | "^"                 { CARET }
  | eof                 { EOF }
  | _ as c              { let line, col = pos lexbuf in
                          raise (Error (Printf.sprintf "unexpected character %C" c, line, col)) }

and comment start = parse
  | "*/"                { () }
  | '\n'                { Lexing.new_line lexbuf; comment start lexbuf }
  | eof                 { let line, col = start in
                          raise (Error ("unterminated comment", line, col)) }
  | _                   { comment start lexbuf }

{
let tokens_of_lexbuf lexbuf =
  let rec go acc =
    let line, col =
      let p = lexbuf.Lexing.lex_curr_p in
      (p.Lexing.pos_lnum, p.Lexing.pos_cnum - p.Lexing.pos_bol)
    in
    match token lexbuf with
    | EOF -> List.rev ({ Token.token = EOF; line; col } :: acc)
    | t -> go ({ Token.token = t; line; col } :: acc)
  in
  go []

let tokens_of_string s = tokens_of_lexbuf (Lexing.from_string s)
}
