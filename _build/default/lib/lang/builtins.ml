type fn = { arity : int; apply : int array -> int }

let table =
  [
    ("abs", { arity = 1; apply = (fun a -> abs a.(0)) });
    ("min2", { arity = 2; apply = (fun a -> min a.(0) a.(1)) });
    ("max2", { arity = 2; apply = (fun a -> max a.(0) a.(1)) });
    ("popcount",
     {
       arity = 1;
       apply =
         (fun a ->
           let rec go acc b = if b = 0 then acc else go (acc + (b land 1)) (b lsr 1) in
           go 0 a.(0));
     });
    ("bit", { arity = 2; apply = (fun a -> (a.(0) lsr a.(1)) land 1) });
    ("sq", { arity = 1; apply = (fun a -> a.(0) * a.(0)) });
  ]

let find name = List.assoc_opt name table

let names = List.map fst table
