lib/lang/token.mli:
