lib/lang/builtins.mli:
