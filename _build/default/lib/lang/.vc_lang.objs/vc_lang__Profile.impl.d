lib/lang/profile.ml: Array Format
