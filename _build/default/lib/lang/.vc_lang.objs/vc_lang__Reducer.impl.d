lib/lang/reducer.ml: List Printf
