lib/lang/termination.mli: Ast Format
