lib/lang/optim.mli: Ast
