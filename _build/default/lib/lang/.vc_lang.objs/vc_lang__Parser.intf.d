lib/lang/parser.mli: Ast Token
