lib/lang/optim.ml: Array Ast Builtins List Set String
