lib/lang/reducer.mli:
