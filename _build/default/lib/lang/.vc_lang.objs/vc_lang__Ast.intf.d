lib/lang/ast.mli: Reducer
