lib/lang/profile.mli: Format
