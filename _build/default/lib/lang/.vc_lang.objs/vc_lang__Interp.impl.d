lib/lang/interp.ml: Array Ast Builtins Hashtbl List Printf Profile Reducer Validate
