lib/lang/parser.ml: Ast Fun Lexer List Printf Reducer Token
