lib/lang/lexer.ml: Lexing List Printf Token
