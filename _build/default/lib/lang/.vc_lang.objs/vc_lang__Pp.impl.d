lib/lang/pp.ml: Ast Format List Reducer
