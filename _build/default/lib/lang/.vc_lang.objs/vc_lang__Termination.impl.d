lib/lang/termination.ml: Ast Format List Optim Option String Validate
