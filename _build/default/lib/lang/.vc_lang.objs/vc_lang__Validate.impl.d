lib/lang/validate.ml: Ast Builtins List Printf Set String
