lib/lang/token.ml:
