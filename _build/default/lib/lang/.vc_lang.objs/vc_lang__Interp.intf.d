lib/lang/interp.mli: Ast Profile
