lib/lang/validate.mli: Ast
