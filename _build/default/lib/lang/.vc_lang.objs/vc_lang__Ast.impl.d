lib/lang/ast.ml: List Reducer
