lib/lang/builtins.ml: Array List
