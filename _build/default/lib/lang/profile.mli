(** Execution profile of an interpreted run.

    Collects the quantities the paper's evaluation reads off the sequential
    execution: the per-level task distribution (Fig. 9), the split between
    kernel instructions (vectorizable under the transformation) and
    task-management overhead (Table 3), and tree shape. *)

type t

val create : unit -> t

(** {1 Recording} *)

val enter_task : t -> depth:int -> unit
val record_base : t -> depth:int -> unit
val kernel_ops : t -> int -> unit
val overhead_ops : t -> int -> unit

(** {1 Reading} *)

val tasks : t -> int
val base_tasks : t -> int
val max_depth : t -> int

val levels : t -> (int * int) array
(** Index = depth; value = (all tasks, base-case tasks) at that depth. *)

val kernel_op_count : t -> int
val overhead_op_count : t -> int

val vectorizable_fraction : t -> float
(** kernel / (kernel + overhead) — Table 3's "Vect" column for the
    sequential execution. *)

val pp : Format.formatter -> t -> unit
