(** Pretty-printer for the concrete syntax.

    [Parser.parse_string (program_to_string p)] reproduces [p] exactly
    (spawn ids are assigned in syntactic order on both sides) — a
    round-trip property the test suite checks on random programs. *)

val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_stmt : Format.formatter -> Ast.stmt -> unit
val pp_program : Format.formatter -> Ast.program -> unit

val expr_to_string : Ast.expr -> string
val program_to_string : Ast.program -> string
