open Ast

let unop_str = function Neg -> "-" | Not -> "!"

let binop_str = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=" | Eq -> "==" | Ne -> "!="
  | And -> "&&" | Or -> "||"
  | Band -> "&" | Bor -> "|" | Bxor -> "^" | Shl -> "<<" | Shr -> ">>"

(* Precedence levels matching the parser: higher binds tighter. *)
let prec = function
  | Or -> 1
  | And -> 2
  | Lt | Le | Gt | Ge | Eq | Ne -> 3
  | Add | Sub | Bor | Bxor -> 4
  | Mul | Div | Mod | Band | Shl | Shr -> 5

let rec pp_expr_prec level fmt e =
  match e with
  | Int n -> if n < 0 then Format.fprintf fmt "(%d)" n else Format.pp_print_int fmt n
  | Bool b -> Format.pp_print_string fmt (if b then "true" else "false")
  | Var name -> Format.pp_print_string fmt name
  | Unop (op, e) -> Format.fprintf fmt "%s%a" (unop_str op) (pp_expr_prec 6) e
  | Binop (op, a, b) ->
      let p = prec op in
      let open_paren = p < level in
      if open_paren then Format.pp_print_char fmt '(';
      (* Left-associative: the right operand needs strictly higher level
         except for non-associative comparisons, which the parser only
         chains once anyway. *)
      Format.fprintf fmt "%a %s %a" (pp_expr_prec p) a (binop_str op)
        (pp_expr_prec (p + 1)) b;
      if open_paren then Format.pp_print_char fmt ')'
  | Call (name, args) ->
      Format.fprintf fmt "%s(%a)" name
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
           (pp_expr_prec 0))
        args

let pp_expr fmt e = pp_expr_prec 0 fmt e

let rec pp_stmt fmt = function
  | Skip -> Format.fprintf fmt "skip;"
  | Return -> Format.fprintf fmt "return;"
  | Seq (a, b) -> Format.fprintf fmt "%a@,%a" pp_stmt a pp_stmt b
  | Assign (name, e) -> Format.fprintf fmt "%s := %a;" name pp_expr e
  | If (cond, a, b) ->
      Format.fprintf fmt "@[<v 2>if %a then {@,%a@]@,@[<v 2>} else {@,%a@]@,}"
        pp_expr cond pp_stmt a pp_stmt b
  | While (cond, body) ->
      Format.fprintf fmt "@[<v 2>while %a {@,%a@]@,}" pp_expr cond pp_stmt body
  | Reduce (name, e) -> Format.fprintf fmt "reduce(%s, %a);" name pp_expr e
  | Spawn { spawn_args; _ } ->
      Format.fprintf fmt "spawn @@self(%a);"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
           pp_expr)
        spawn_args

(* [pp_stmt] prints spawn targets as a placeholder because the statement
   alone does not know the method name; [pp_program] rebinds it. *)
let pp_stmt_in ~method_name fmt stmt =
  let rec go fmt = function
    | Spawn { spawn_args; _ } ->
        Format.fprintf fmt "spawn %s(%a);" method_name
          (Format.pp_print_list
             ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
             pp_expr)
          spawn_args
    | Seq (a, b) -> Format.fprintf fmt "%a@,%a" go a go b
    | If (cond, a, b) ->
        Format.fprintf fmt "@[<v 2>if %a then {@,%a@]@,@[<v 2>} else {@,%a@]@,}"
          pp_expr cond go a go b
    | While (cond, body) ->
        Format.fprintf fmt "@[<v 2>while %a {@,%a@]@,}" pp_expr cond go body
    | (Skip | Return | Assign _ | Reduce _) as s -> pp_stmt fmt s
  in
  go fmt stmt

let pp_program fmt { reducers; mth } =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun { red_name; red_op } ->
      Format.fprintf fmt "reducer %s %s;@," (Reducer.op_name red_op) red_name)
    reducers;
  if reducers <> [] then Format.fprintf fmt "@,";
  Format.fprintf fmt "@[<v 2>def %s(%a) =@,@[<v 2>if %a then {@,%a@]@,@[<v 2>} else {@,%a@]@,}@]@]"
    mth.name
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
       Format.pp_print_string)
    mth.params pp_expr mth.is_base
    (pp_stmt_in ~method_name:mth.name)
    mth.base
    (pp_stmt_in ~method_name:mth.name)
    mth.inductive

let expr_to_string e = Format.asprintf "%a" pp_expr e
let program_to_string p = Format.asprintf "%a" pp_program p
