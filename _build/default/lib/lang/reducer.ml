type op = Sum | Min | Max

let identity = function Sum -> 0 | Min -> max_int | Max -> min_int

let apply op a b =
  match op with Sum -> a + b | Min -> min a b | Max -> max a b

let op_name = function Sum -> "sum" | Min -> "min" | Max -> "max"

let op_of_name = function
  | "sum" -> Some Sum
  | "min" -> Some Min
  | "max" -> Some Max
  | _ -> None

type t = { op : op; mutable value : int }

let create op = { op; value = identity op }
let op t = t.op
let value t = t.value
let update t x = t.value <- apply t.op t.value x
let reset t = t.value <- identity t.op

type set = (string * t) list

let make_set decls =
  let names = List.map fst decls in
  let rec dup = function
    | [] -> None
    | n :: rest -> if List.mem n rest then Some n else dup rest
  in
  (match dup names with
  | Some n -> invalid_arg (Printf.sprintf "Reducer.make_set: duplicate reducer %S" n)
  | None -> ());
  List.map (fun (name, op) -> (name, create op)) decls

let find set name = List.assoc name set

let reduce set name x = update (find set name) x

let values set = List.map (fun (name, r) -> (name, value r)) set

let reset_set set = List.iter (fun (_, r) -> reset r) set
