(** Reducer objects — the language's only form of global state (paper §2).

    Base cases communicate results through associative, commutative updates
    to named reducers (Cilk++ hyperobjects in the paper's reference [11]),
    which is what makes base-case tasks freely reorderable and hence
    vectorizable. *)

type op =
  | Sum  (** integer addition, identity 0 *)
  | Min  (** minimum, identity [max_int] *)
  | Max  (** maximum, identity [min_int] *)

val identity : op -> int
val apply : op -> int -> int -> int
val op_name : op -> string
val op_of_name : string -> op option

type t
(** A single mutable reducer cell. *)

val create : op -> t
val op : t -> op
val value : t -> int
val update : t -> int -> unit
val reset : t -> unit

type set
(** A named collection of reducers — the global reducer environment of one
    program run. *)

val make_set : (string * op) list -> set
(** Raises [Invalid_argument] on duplicate names. *)

val find : set -> string -> t
(** Raises [Not_found]. *)

val reduce : set -> string -> int -> unit
val values : set -> (string * int) list
(** In declaration order. *)

val reset_set : set -> unit
