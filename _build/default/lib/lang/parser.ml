open Ast

exception Error of string * int * int

type state = { mutable toks : Token.located list; mutable spawn_count : int }

let fail (st : state) msg =
  match st.toks with
  | { Token.token = _; line; col } :: _ -> raise (Error (msg, line, col))
  | [] -> raise (Error (msg, 0, 0))

let peek st =
  match st.toks with
  | { Token.token; _ } :: _ -> token
  | [] -> Token.EOF

let advance st = match st.toks with _ :: rest -> st.toks <- rest | [] -> ()

let eat st tok =
  if peek st = tok then advance st
  else
    fail st
      (Printf.sprintf "expected %s but found %s" (Token.to_string tok)
         (Token.to_string (peek st)))

let ident st =
  match peek st with
  | Token.IDENT name ->
      advance st;
      name
  | t -> fail st (Printf.sprintf "expected identifier, found %s" (Token.to_string t))

(* Expression parsing by precedence climbing.  Levels, loosest first:
   or, and, comparisons, additive [+ - "|" "^"], multiplicative
   [* / mod "&" shifts], unary, atom. *)

let rec expr st = expr_or st

and expr_or st =
  let lhs = expr_and st in
  let rec loop lhs =
    match peek st with
    | Token.OROR ->
        advance st;
        loop (Binop (Or, lhs, expr_and st))
    | _ -> lhs
  in
  loop lhs

and expr_and st =
  let lhs = expr_cmp st in
  let rec loop lhs =
    match peek st with
    | Token.ANDAND ->
        advance st;
        loop (Binop (And, lhs, expr_cmp st))
    | _ -> lhs
  in
  loop lhs

and expr_cmp st =
  let lhs = expr_add st in
  match peek st with
  | Token.LT -> advance st; Binop (Lt, lhs, expr_add st)
  | Token.LE -> advance st; Binop (Le, lhs, expr_add st)
  | Token.GT -> advance st; Binop (Gt, lhs, expr_add st)
  | Token.GE -> advance st; Binop (Ge, lhs, expr_add st)
  | Token.EQEQ -> advance st; Binop (Eq, lhs, expr_add st)
  | Token.NE -> advance st; Binop (Ne, lhs, expr_add st)
  | _ -> lhs

and expr_add st =
  let lhs = expr_mul st in
  let rec loop lhs =
    match peek st with
    | Token.PLUS -> advance st; loop (Binop (Add, lhs, expr_mul st))
    | Token.MINUS -> advance st; loop (Binop (Sub, lhs, expr_mul st))
    | Token.PIPE -> advance st; loop (Binop (Bor, lhs, expr_mul st))
    | Token.CARET -> advance st; loop (Binop (Bxor, lhs, expr_mul st))
    | _ -> lhs
  in
  loop lhs

and expr_mul st =
  let lhs = expr_unary st in
  let rec loop lhs =
    match peek st with
    | Token.STAR -> advance st; loop (Binop (Mul, lhs, expr_unary st))
    | Token.SLASH -> advance st; loop (Binop (Div, lhs, expr_unary st))
    | Token.PERCENT -> advance st; loop (Binop (Mod, lhs, expr_unary st))
    | Token.AMP -> advance st; loop (Binop (Band, lhs, expr_unary st))
    | Token.SHL -> advance st; loop (Binop (Shl, lhs, expr_unary st))
    | Token.SHR -> advance st; loop (Binop (Shr, lhs, expr_unary st))
    | _ -> lhs
  in
  loop lhs

and expr_unary st =
  match peek st with
  | Token.MINUS ->
      advance st;
      Unop (Neg, expr_unary st)
  | Token.BANG ->
      advance st;
      Unop (Not, expr_unary st)
  | _ -> expr_atom st

and expr_atom st =
  match peek st with
  | Token.INT n ->
      advance st;
      Int n
  | Token.KW_TRUE ->
      advance st;
      Bool true
  | Token.KW_FALSE ->
      advance st;
      Bool false
  | Token.LPAREN ->
      advance st;
      let e = expr st in
      eat st Token.RPAREN;
      e
  | Token.IDENT name ->
      advance st;
      if peek st = Token.LPAREN then begin
        advance st;
        let args = expr_args st in
        eat st Token.RPAREN;
        Call (name, args)
      end
      else Var name
  | t -> fail st (Printf.sprintf "expected expression, found %s" (Token.to_string t))

and expr_args st =
  if peek st = Token.RPAREN then []
  else
    let rec loop acc =
      let e = expr st in
      if peek st = Token.COMMA then begin
        advance st;
        loop (e :: acc)
      end
      else List.rev (e :: acc)
    in
    loop []

let rec block st ~method_name =
  eat st Token.LBRACE;
  let rec stmts acc =
    if peek st = Token.RBRACE then begin
      advance st;
      Ast.seq (List.rev acc)
    end
    else stmts (stmt st ~method_name :: acc)
  in
  stmts []

and stmt st ~method_name =
  match peek st with
  | Token.KW_RETURN ->
      advance st;
      eat st Token.SEMI;
      Return
  | Token.IDENT "skip" ->
      advance st;
      eat st Token.SEMI;
      Skip
  | Token.KW_IF ->
      advance st;
      let cond = expr st in
      eat st Token.KW_THEN;
      let then_branch = block st ~method_name in
      let else_branch =
        if peek st = Token.KW_ELSE then begin
          advance st;
          block st ~method_name
        end
        else Skip
      in
      If (cond, then_branch, else_branch)
  | Token.KW_WHILE ->
      advance st;
      let cond = expr st in
      let body = block st ~method_name in
      While (cond, body)
  | Token.KW_REDUCE ->
      advance st;
      eat st Token.LPAREN;
      let name = ident st in
      eat st Token.COMMA;
      let e = expr st in
      eat st Token.RPAREN;
      eat st Token.SEMI;
      Reduce (name, e)
  | Token.KW_SPAWN ->
      advance st;
      let callee = ident st in
      if callee <> method_name then
        fail st
          (Printf.sprintf "spawn target %s is not the enclosing method %s \
                           (only self-recursion is supported)" callee method_name);
      eat st Token.LPAREN;
      let args = expr_args st in
      eat st Token.RPAREN;
      eat st Token.SEMI;
      let id = st.spawn_count in
      st.spawn_count <- st.spawn_count + 1;
      Spawn { spawn_id = id; spawn_args = args }
  | Token.IDENT name ->
      advance st;
      eat st Token.ASSIGN;
      let e = expr st in
      eat st Token.SEMI;
      Assign (name, e)
  | t -> fail st (Printf.sprintf "expected statement, found %s" (Token.to_string t))

let reducer_decl st =
  eat st Token.KW_REDUCER;
  let op_name = ident st in
  let op =
    match Reducer.op_of_name op_name with
    | Some op -> op
    | None -> fail st (Printf.sprintf "unknown reducer operation %s" op_name)
  in
  let name = ident st in
  eat st Token.SEMI;
  { red_name = name; red_op = op }

let params st =
  eat st Token.LPAREN;
  if peek st = Token.RPAREN then begin
    advance st;
    []
  end
  else
    let rec loop acc =
      let p = ident st in
      if peek st = Token.COMMA then begin
        advance st;
        loop (p :: acc)
      end
      else begin
        eat st Token.RPAREN;
        List.rev (p :: acc)
      end
    in
    loop []

let mth st =
  eat st Token.KW_DEF;
  let name = ident st in
  let params = params st in
  eat st Token.EQUALS;
  eat st Token.KW_IF;
  let is_base = expr st in
  eat st Token.KW_THEN;
  let base = block st ~method_name:name in
  eat st Token.KW_ELSE;
  let inductive = block st ~method_name:name in
  { name; params; is_base; base; inductive }

let program st =
  let rec reducers acc =
    if peek st = Token.KW_REDUCER then reducers (reducer_decl st :: acc)
    else List.rev acc
  in
  let reducers = reducers [] in
  let mth = mth st in
  eat st Token.EOF;
  { reducers; mth }

let program_of_tokens toks =
  program { toks; spawn_count = 0 }

let parse_string s = program_of_tokens (Lexer.tokens_of_string s)

let parse_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      parse_string s)

let expr_of_string s =
  let st = { toks = Lexer.tokens_of_string s; spawn_count = 0 } in
  let e = expr st in
  eat st Token.EOF;
  e
