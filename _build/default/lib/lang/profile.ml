type t = {
  mutable tasks : int;
  mutable base_tasks : int;
  mutable max_depth : int;
  mutable kernel : int;
  mutable overhead : int;
  mutable level_tasks : int array;
  mutable level_base : int array;
}

let create () =
  {
    tasks = 0;
    base_tasks = 0;
    max_depth = 0;
    kernel = 0;
    overhead = 0;
    level_tasks = Array.make 16 0;
    level_base = Array.make 16 0;
  }

let ensure t depth =
  let n = Array.length t.level_tasks in
  if depth >= n then begin
    let n' = max (depth + 1) (2 * n) in
    let grow a =
      let b = Array.make n' 0 in
      Array.blit a 0 b 0 n;
      b
    in
    t.level_tasks <- grow t.level_tasks;
    t.level_base <- grow t.level_base
  end

let enter_task t ~depth =
  ensure t depth;
  t.tasks <- t.tasks + 1;
  t.level_tasks.(depth) <- t.level_tasks.(depth) + 1;
  if depth > t.max_depth then t.max_depth <- depth

let record_base t ~depth =
  ensure t depth;
  t.base_tasks <- t.base_tasks + 1;
  t.level_base.(depth) <- t.level_base.(depth) + 1

let kernel_ops t n = t.kernel <- t.kernel + n
let overhead_ops t n = t.overhead <- t.overhead + n

let tasks t = t.tasks
let base_tasks t = t.base_tasks
let max_depth t = t.max_depth

let levels t =
  Array.init (t.max_depth + 1) (fun d -> (t.level_tasks.(d), t.level_base.(d)))

let kernel_op_count t = t.kernel
let overhead_op_count t = t.overhead

let vectorizable_fraction t =
  let total = t.kernel + t.overhead in
  if total = 0 then 1.0 else float_of_int t.kernel /. float_of_int total

let pp fmt t =
  Format.fprintf fmt "tasks %d (base %d), depth %d, kernel ops %d, overhead ops %d"
    t.tasks t.base_tasks t.max_depth t.kernel t.overhead
