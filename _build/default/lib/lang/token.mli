(** Tokens of the concrete syntax (see README "The DSL" for the grammar). *)

type t =
  | INT of int
  | IDENT of string
  | KW_DEF
  | KW_IF
  | KW_THEN
  | KW_ELSE
  | KW_WHILE
  | KW_RETURN
  | KW_REDUCE
  | KW_SPAWN
  | KW_REDUCER
  | KW_TRUE
  | KW_FALSE
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | COMMA
  | SEMI
  | ASSIGN  (** [:=] *)
  | EQUALS  (** [=] (definition) *)
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | LT | LE | GT | GE | EQEQ | NE
  | ANDAND | OROR | BANG
  | AMP | PIPE | CARET | SHL | SHR
  | EOF

val to_string : t -> string

type located = { token : t; line : int; col : int }
