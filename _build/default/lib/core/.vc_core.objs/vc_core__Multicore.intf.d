lib/core/multicore.mli: Report Spec Vc_mem
