lib/core/codegen.mli: Vc_lang
