lib/core/addr.ml:
