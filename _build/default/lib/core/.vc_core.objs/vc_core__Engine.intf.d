lib/core/engine.mli: Policy Report Spec Trace Vc_mem Vc_simd
