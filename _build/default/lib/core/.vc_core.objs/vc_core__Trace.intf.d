lib/core/trace.mli: Format
