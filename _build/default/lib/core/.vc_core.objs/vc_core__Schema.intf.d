lib/core/schema.mli: Format Vc_simd
