lib/core/seq_exec.ml: Array Block List Measure Metrics Schema Spec Unix Vc_lang Vc_mem Vc_simd
