lib/core/blocked_ast.mli: Format Vc_lang
