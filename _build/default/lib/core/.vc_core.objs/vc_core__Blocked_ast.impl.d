lib/core/blocked_ast.ml: Format List String Vc_lang
