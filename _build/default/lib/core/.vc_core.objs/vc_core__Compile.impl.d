lib/core/compile.ml: Array Ast Block Codegen List Printf Reducer Schema Spec Vc_lang Vc_simd
