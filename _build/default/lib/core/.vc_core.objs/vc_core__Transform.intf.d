lib/core/transform.mli: Blocked_ast Vc_lang
