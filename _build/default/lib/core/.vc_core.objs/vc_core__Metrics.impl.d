lib/core/metrics.ml: Array
