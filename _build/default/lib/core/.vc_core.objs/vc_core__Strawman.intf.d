lib/core/strawman.mli: Report Spec Vc_mem
