lib/core/addr.mli:
