lib/core/block.ml: Addr Array Printf Schema
