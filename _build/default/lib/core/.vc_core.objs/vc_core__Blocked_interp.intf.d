lib/core/blocked_interp.mli: Blocked_ast Policy
