lib/core/policy.mli:
