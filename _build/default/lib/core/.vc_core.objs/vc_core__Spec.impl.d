lib/core/spec.ml: Array Block List Printf Schema Vc_lang
