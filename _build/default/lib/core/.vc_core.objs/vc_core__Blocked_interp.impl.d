lib/core/blocked_interp.ml: Array Ast Blocked_ast Codegen List Policy Printf Reducer Vc_lang
