lib/core/strawman.ml: Addr Array Block List Measure Metrics Schema Spec Unix Vc_lang Vc_mem Vc_simd
