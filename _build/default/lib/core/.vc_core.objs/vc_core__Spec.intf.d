lib/core/spec.mli: Block Schema Vc_lang
