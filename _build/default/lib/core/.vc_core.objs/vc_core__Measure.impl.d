lib/core/measure.ml: Addr List Metrics Report Vc_mem Vc_simd
