lib/core/multicore.ml: Array Block Engine List Measure Policy Report Schema Spec Vc_lang Vc_mem Vc_simd Ws_sim
