lib/core/trace.ml: Array Format List String
