lib/core/metrics.mli:
