lib/core/transform.ml: Ast Blocked_ast Validate Vc_lang
