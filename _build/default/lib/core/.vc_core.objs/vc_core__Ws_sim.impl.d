lib/core/ws_sim.ml: Array List
