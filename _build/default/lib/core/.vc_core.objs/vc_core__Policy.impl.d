lib/core/policy.ml: Printf
