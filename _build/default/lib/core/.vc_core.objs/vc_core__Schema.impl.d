lib/core/schema.ml: Array Format List Printf String Vc_simd
