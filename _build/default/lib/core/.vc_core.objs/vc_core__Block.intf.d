lib/core/block.mli: Addr Schema Vc_simd
