lib/core/compile.mli: Spec Vc_lang Vc_simd
