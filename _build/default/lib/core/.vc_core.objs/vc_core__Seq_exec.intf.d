lib/core/seq_exec.mli: Report Spec Vc_mem
