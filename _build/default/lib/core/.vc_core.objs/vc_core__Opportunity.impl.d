lib/core/opportunity.ml: Format Report
