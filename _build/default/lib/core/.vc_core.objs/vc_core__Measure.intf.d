lib/core/measure.mli: Addr Metrics Report Vc_mem Vc_simd
