lib/core/distribute.mli: Blocked_ast Format Vc_lang
