lib/core/distribute.ml: Array Ast Blocked_ast Builtins Codegen Format Hashtbl List Pp Printf Set String Vc_lang
