lib/core/soa.mli: Addr Block Schema Vc_simd
