lib/core/engine.ml: Array Block Hashtbl List Logs Measure Metrics Policy Printf Report Schema Spec Trace Unix Vc_lang Vc_mem Vc_simd
