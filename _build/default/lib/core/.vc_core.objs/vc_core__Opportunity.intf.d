lib/core/opportunity.mli: Format Report
