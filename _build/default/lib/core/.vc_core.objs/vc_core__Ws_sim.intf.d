lib/core/ws_sim.mli:
