lib/core/soa.ml: Array Block Schema Vc_simd
