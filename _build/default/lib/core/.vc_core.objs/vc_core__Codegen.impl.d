lib/core/codegen.ml: Array Ast Builtins List Printf Validate Vc_lang
