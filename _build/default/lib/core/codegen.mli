(** Closure compiler for the DSL: resolves variables to slots once, then
    evaluates with no name lookups.

    Both the blocked interpreter and the DSL→Spec compiler need to run
    method bodies once per thread per level; compiling to closures keeps
    that cheap.  Booleans are represented as 0/1 ints at run time (the
    validator has already type-checked the program). *)

exception Runtime_error of string

type layout
(** Slot assignment: parameters map to frame slots, locals to a scratch
    array. *)

val layout_of : Vc_lang.Ast.program -> layout
(** Validates the program ({!Vc_lang.Validate.check_exn}) and assigns
    slots. *)

val params : layout -> string array
val locals : layout -> string array

type rt = { frame : int array; locals : int array }
(** Runtime state of one thread: [frame] holds the parameters (length =
    number of params), [locals] is scratch (length = number of locals). *)

val make_rt : layout -> rt
(** Fresh runtime state with zeroed slots (reusable across threads by
    overwriting [frame] contents and calling {!reset_locals}). *)

val reset_locals : rt -> unit

val compile_expr : layout -> Vc_lang.Ast.expr -> rt -> int
(** Booleans evaluate to 0/1.  Short-circuits [&&] and [||]. *)

val compile_stmt :
  layout ->
  reduce:(string -> int -> unit) ->
  spawn:(site:int -> int array -> unit) ->
  Vc_lang.Ast.stmt ->
  rt ->
  unit
(** [spawn] receives the site id and the evaluated child arguments.
    [return] statements abort the rest of the compiled statement. *)
