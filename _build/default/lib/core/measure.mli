(** Shared measurement context for one run: VM wired to a fresh cache
    hierarchy of the target machine, an address-space allocator, and a
    metrics collector; plus report assembly. *)

type t = {
  vm : Vc_simd.Vm.t;
  hier : Vc_mem.Hierarchy.t;
  addr : Addr.t;
  metrics : Metrics.t;
  machine : Vc_mem.Machine.t;
}

val create : Vc_mem.Machine.t -> t

val report :
  t ->
  benchmark:string ->
  strategy:string ->
  reducers:(string * int) list ->
  wall_seconds:float ->
  Report.t
