open Vc_lang

let rec rewrite_stmt ~flavor (s : Ast.stmt) : Blocked_ast.bstmt =
  match s with
  | Ast.Skip -> Blocked_ast.BSkip
  | Ast.Return -> Blocked_ast.Continue
  | Ast.Seq (a, b) -> Blocked_ast.BSeq (rewrite_stmt ~flavor a, rewrite_stmt ~flavor b)
  | Ast.Assign (name, e) -> Blocked_ast.BAssign (name, e)
  | Ast.If (c, a, b) ->
      Blocked_ast.BIf (c, rewrite_stmt ~flavor a, rewrite_stmt ~flavor b)
  | Ast.While (c, body) -> Blocked_ast.BWhile (c, rewrite_stmt ~flavor body)
  | Ast.Reduce (name, e) -> Blocked_ast.BReduce (name, e)
  | Ast.Spawn { spawn_id; spawn_args } -> (
      match flavor with
      | Blocked_ast.Bfs -> Blocked_ast.NextAdd spawn_args
      | Blocked_ast.Blocked -> Blocked_ast.NextsAdd (spawn_id, spawn_args))

let rewrite_method ~flavor (m : Ast.mth) : Blocked_ast.bmethod =
  let suffix = match flavor with Blocked_ast.Bfs -> "_bfs" | Blocked_ast.Blocked -> "_blocked" in
  {
    Blocked_ast.flavor;
    bname = m.Ast.name ^ suffix;
    fields = m.Ast.params;
    is_base = m.Ast.is_base;
    base = rewrite_stmt ~flavor m.Ast.base;
    inductive = rewrite_stmt ~flavor m.Ast.inductive;
  }

let transform (program : Ast.program) : Blocked_ast.t =
  let info = Validate.check_exn program in
  let m = program.Ast.mth in
  {
    Blocked_ast.source = program;
    thread_fields = m.Ast.params;
    num_spawns = info.Validate.num_spawns;
    bfs_method = rewrite_method ~flavor:Blocked_ast.Bfs m;
    blocked_method = rewrite_method ~flavor:Blocked_ast.Blocked m;
  }
