(** The paper's rewrite rules (§4.4, Fig. 7).

    A validated method [f] is rewritten into three artifacts:
    - a Thread structure holding one field per parameter;
    - [f_bfs], the breadth-first flavor, where every
      [spawn f(e1..ek)] becomes [next.add(new Thread(e1..ek))];
    - [f_blocked], the blocked depth-first flavor, where spawn site [id]
      becomes [nexts[id].add(new Thread(e1..ek))];
    plus an entry method that seeds a one-thread block and calls [f_bfs].

    [return] rewrites to [continue] in both flavors; all other statements
    are rewritten structurally. *)

val transform : Vc_lang.Ast.program -> Blocked_ast.t
(** Raises [Vc_lang.Validate.Invalid] if the program violates Fig. 2. *)

val rewrite_stmt : flavor:Blocked_ast.flavor -> Vc_lang.Ast.stmt -> Blocked_ast.bstmt
(** The X[.] rewrite on statements, exposed for testing. *)
