type insns = {
  check_insns : int;
  base_insns : int;
  inductive_insns : int;
  spawn_insns : int;
  scalar_insns : int;
}

type t = {
  name : string;
  description : string;
  schema : Schema.t;
  num_spawns : int;
  roots : int array list;
  reducers : (string * Vc_lang.Reducer.op) list;
  is_base : Block.t -> int -> bool;
  exec_base : Vc_lang.Reducer.set -> Block.t -> int -> unit;
  spawn : Block.t -> int -> site:int -> dst:Block.t -> bool;
  insns : insns;
}

let validate t =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  if t.num_spawns < 1 then err "num_spawns must be at least 1";
  if t.roots = [] then err "no root frames";
  let nfields = Schema.num_fields t.schema in
  List.iteri
    (fun i frame ->
      if Array.length frame <> nfields then
        err "root frame %d has %d fields, schema has %d" i (Array.length frame) nfields)
    t.roots;
  if
    t.insns.check_insns < 0 || t.insns.base_insns < 0 || t.insns.inductive_insns < 0
    || t.insns.spawn_insns < 0 || t.insns.scalar_insns < 0
  then err "negative instruction weights";
  let names = List.map fst t.reducers in
  let rec dup = function
    | [] -> ()
    | n :: rest -> if List.mem n rest then err "duplicate reducer %s" n else dup rest
  in
  dup names;
  match !errors with [] -> Ok () | es -> Error (List.rev es)

let make_reducers t = Vc_lang.Reducer.make_set t.reducers
