(** Sequential depth-first execution of a {!Spec.t} — the baseline every
    speedup in the paper is measured against (Table 1's "Time" column).

    A software stack of frames is walked depth-first; each task pays its
    kernel instruction weights as scalar instructions plus the per-frame
    stack traffic, all routed through the cost model, so the baseline's
    cycles are measured under exactly the same model as the vectorized
    runs. *)

exception Task_limit_exceeded of int

val run :
  ?max_tasks:int ->
  spec:Spec.t ->
  machine:Vc_mem.Machine.t ->
  unit ->
  Report.t
(** [max_tasks] (default 200M) guards runaway specs. *)
