type phase = Bfs | Blocked | Cutoff

type event = { seq : int; phase : phase; depth : int; size : int; base : int }

type t = { mutable events : event list; mutable count : int }

let create () = { events = []; count = 0 }

let record t ~phase ~depth ~size ~base =
  t.events <- { seq = t.count; phase; depth; size; base } :: t.events;
  t.count <- t.count + 1

let clear t =
  t.events <- [];
  t.count <- 0

let events t = Array.of_list (List.rev t.events)

let length t = t.count

let phase_name = function Bfs -> "bfs" | Blocked -> "blocked" | Cutoff -> "cutoff"

let phase_counts t =
  let count p = List.length (List.filter (fun e -> e.phase = p) t.events) in
  List.filter_map
    (fun p ->
      let n = count p in
      if n > 0 then Some (p, n) else None)
    [ Bfs; Blocked; Cutoff ]

let log2i n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let pp ?(limit = 40) fmt t =
  let evs = events t in
  Format.fprintf fmt "@[<v>%6s %-8s %6s %10s %8s  %s@," "#" "phase" "depth"
    "threads" "base" "log2(size)";
  Array.iteri
    (fun i e ->
      if i < limit then
        Format.fprintf fmt "%6d %-8s %6d %10d %8d  %s@," e.seq (phase_name e.phase)
          e.depth e.size e.base
          (String.make (log2i (max e.size 1)) '#'))
    evs;
  if Array.length evs > limit then
    Format.fprintf fmt "  ... %d more events@," (Array.length evs - limit);
  Format.fprintf fmt "summary:";
  List.iter
    (fun (p, n) -> Format.fprintf fmt " %s=%d" (phase_name p) n)
    (phase_counts t);
  Format.fprintf fmt "@]@."
