type bstmt =
  | BSkip
  | Continue
  | BSeq of bstmt * bstmt
  | BAssign of string * Vc_lang.Ast.expr
  | BIf of Vc_lang.Ast.expr * bstmt * bstmt
  | BWhile of Vc_lang.Ast.expr * bstmt
  | BReduce of string * Vc_lang.Ast.expr
  | NextAdd of Vc_lang.Ast.expr list
  | NextsAdd of int * Vc_lang.Ast.expr list

type flavor = Bfs | Blocked

type bmethod = {
  flavor : flavor;
  bname : string;
  fields : string list;
  is_base : Vc_lang.Ast.expr;
  base : bstmt;
  inductive : bstmt;
}

type t = {
  source : Vc_lang.Ast.program;
  thread_fields : string list;
  num_spawns : int;
  bfs_method : bmethod;
  blocked_method : bmethod;
}

let pp_expr = Vc_lang.Pp.pp_expr

let pp_args fmt args =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
    pp_expr fmt args

let rec pp_bstmt fmt = function
  | BSkip -> Format.fprintf fmt "skip;"
  | Continue -> Format.fprintf fmt "continue;"
  | BSeq (a, b) -> Format.fprintf fmt "%a@,%a" pp_bstmt a pp_bstmt b
  | BAssign (name, e) -> Format.fprintf fmt "%s := %a;" name pp_expr e
  | BIf (c, a, b) ->
      Format.fprintf fmt "@[<v 2>if %a then {@,%a@]@,@[<v 2>} else {@,%a@]@,}"
        pp_expr c pp_bstmt a pp_bstmt b
  | BWhile (c, s) -> Format.fprintf fmt "@[<v 2>while %a {@,%a@]@,}" pp_expr c pp_bstmt s
  | BReduce (name, e) -> Format.fprintf fmt "reduce(%s, %a);" name pp_expr e
  | NextAdd args -> Format.fprintf fmt "next.add(new Thread(%a));" pp_args args
  | NextsAdd (id, args) ->
      Format.fprintf fmt "nexts[%d].add(new Thread(%a));" id pp_args args

let pp_bmethod fmt m =
  let name_root =
    match String.rindex_opt m.bname '_' with
    | Some i -> String.sub m.bname 0 i
    | None -> m.bname
  in
  Format.fprintf fmt "@[<v 2>void %s(ThreadBlock tb) {@," m.bname;
  (match m.flavor with
  | Bfs -> Format.fprintf fmt "ThreadBlock next;@,"
  | Blocked -> Format.fprintf fmt "ThreadBlock nexts[#spawn];@,");
  Format.fprintf fmt "@[<v 2>foreach (Thread t : tb) {@,";
  List.iter (fun f -> Format.fprintf fmt "%s := t.%s;@," f f) m.fields;
  Format.fprintf fmt "@[<v 2>if %a then {@,%a@]@,@[<v 2>} else {@,%a@]@,}" pp_expr
    m.is_base pp_bstmt m.base pp_bstmt m.inductive;
  Format.fprintf fmt "@]@,}@,";
  (match m.flavor with
  | Bfs ->
      Format.fprintf fmt
        "if (next.size() < max_block_size) %s_bfs(next);@,else %s_blocked(next);"
        name_root name_root
  | Blocked ->
      Format.fprintf fmt
        "@[<v 2>foreach (ThreadBlock next : nexts) {@,\
         if (next.size() > reexpansion_threshold) %s_blocked(next);@,\
         else %s_bfs(next);@]@,}"
        name_root name_root);
  Format.fprintf fmt "@]@,}"

let pp fmt t =
  let fields = t.thread_fields in
  Format.fprintf fmt "@[<v>struct Thread { %s };@,@,"
    (String.concat "; " (List.map (fun f -> "int " ^ f) fields));
  Format.fprintf fmt "%a@,@,%a@,@," pp_bmethod t.bfs_method pp_bmethod t.blocked_method;
  let name = t.source.Vc_lang.Ast.mth.Vc_lang.Ast.name in
  Format.fprintf fmt
    "@[<v 2>void %s(%s) {@,ThreadBlock init;@,init.add(new Thread(%s));@,%s_bfs(init);@]@,}@]"
    name
    (String.concat ", " (List.map (fun f -> "int " ^ f) fields))
    (String.concat ", " fields) name

let to_string t = Format.asprintf "%a" pp t
