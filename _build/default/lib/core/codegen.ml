open Vc_lang

exception Runtime_error of string

type layout = { params : string array; locals : string array }

let layout_of (program : Ast.program) =
  let info = Validate.check_exn program in
  {
    params = Array.of_list program.Ast.mth.Ast.params;
    locals = Array.of_list info.Validate.locals;
  }

let params l = l.params
let locals l = l.locals

type rt = { frame : int array; locals : int array }

let make_rt l =
  { frame = Array.make (Array.length l.params) 0; locals = Array.make (max 1 (Array.length l.locals)) 0 }

let reset_locals rt = Array.fill rt.locals 0 (Array.length rt.locals) 0

type slot = Param of int | Local of int

let find_slot l name =
  let rec scan arr i mk =
    if i >= Array.length arr then None
    else if arr.(i) = name then Some (mk i)
    else scan arr (i + 1) mk
  in
  match scan l.params 0 (fun i -> Param i) with
  | Some s -> Some s
  | None -> scan l.locals 0 (fun i -> Local i)

let slot_exn l name =
  match find_slot l name with
  | Some s -> s
  | None -> raise (Runtime_error (Printf.sprintf "unbound variable %s" name))

let bool_of i = i <> 0
let of_bool b = if b then 1 else 0

let rec compile_expr l (e : Ast.expr) : rt -> int =
  match e with
  | Ast.Int n -> fun _ -> n
  | Ast.Bool b ->
      let v = of_bool b in
      fun _ -> v
  | Ast.Var name -> (
      match slot_exn l name with
      | Param i -> fun rt -> rt.frame.(i)
      | Local i -> fun rt -> rt.locals.(i))
  | Ast.Unop (Ast.Neg, e) ->
      let f = compile_expr l e in
      fun rt -> -f rt
  | Ast.Unop (Ast.Not, e) ->
      let f = compile_expr l e in
      fun rt -> of_bool (not (bool_of (f rt)))
  | Ast.Binop (op, a, b) -> compile_binop l op a b
  | Ast.Call (name, args) -> (
      match Builtins.find name with
      | None -> raise (Runtime_error (Printf.sprintf "unknown builtin %s" name))
      | Some fn ->
          let compiled = Array.of_list (List.map (compile_expr l) args) in
          if Array.length compiled <> fn.Builtins.arity then
            raise (Runtime_error (Printf.sprintf "bad arity for builtin %s" name));
          let buf = Array.make (Array.length compiled) 0 in
          fun rt ->
            Array.iteri (fun i f -> buf.(i) <- f rt) compiled;
            fn.Builtins.apply buf)

and compile_binop l op a b =
  let fa = compile_expr l a in
  let fb = compile_expr l b in
  match (op : Ast.binop) with
  | Ast.Add -> fun rt -> fa rt + fb rt
  | Ast.Sub -> fun rt -> fa rt - fb rt
  | Ast.Mul -> fun rt -> fa rt * fb rt
  | Ast.Div ->
      fun rt ->
        let d = fb rt in
        if d = 0 then raise (Runtime_error "division by zero");
        fa rt / d
  | Ast.Mod ->
      fun rt ->
        let d = fb rt in
        if d = 0 then raise (Runtime_error "modulo by zero");
        fa rt mod d
  | Ast.Lt -> fun rt -> of_bool (fa rt < fb rt)
  | Ast.Le -> fun rt -> of_bool (fa rt <= fb rt)
  | Ast.Gt -> fun rt -> of_bool (fa rt > fb rt)
  | Ast.Ge -> fun rt -> of_bool (fa rt >= fb rt)
  | Ast.Eq -> fun rt -> of_bool (fa rt = fb rt)
  | Ast.Ne -> fun rt -> of_bool (fa rt <> fb rt)
  | Ast.And -> fun rt -> if bool_of (fa rt) then fb rt else 0
  | Ast.Or -> fun rt -> if bool_of (fa rt) then 1 else fb rt
  | Ast.Band -> fun rt -> fa rt land fb rt
  | Ast.Bor -> fun rt -> fa rt lor fb rt
  | Ast.Bxor -> fun rt -> fa rt lxor fb rt
  | Ast.Shl -> fun rt -> fa rt lsl (fb rt land 62)
  | Ast.Shr -> fun rt -> fa rt asr (fb rt land 62)

exception Returned

let compile_stmt l ~reduce ~spawn stmt =
  let rec compile (stmt : Ast.stmt) : rt -> unit =
    match stmt with
    | Ast.Skip -> fun _ -> ()
    | Ast.Return -> fun _ -> raise Returned
    | Ast.Seq (a, b) ->
        let fa = compile a in
        let fb = compile b in
        fun rt ->
          fa rt;
          fb rt
    | Ast.Assign (name, e) -> (
        let f = compile_expr l e in
        match slot_exn l name with
        | Local i -> fun rt -> rt.locals.(i) <- f rt
        | Param i -> fun rt -> rt.frame.(i) <- f rt)
    | Ast.If (cond, a, b) ->
        let fc = compile_expr l cond in
        let fa = compile a in
        let fb = compile b in
        fun rt -> if bool_of (fc rt) then fa rt else fb rt
    | Ast.While (cond, body) ->
        let fc = compile_expr l cond in
        let fbody = compile body in
        fun rt ->
          while bool_of (fc rt) do
            fbody rt
          done
    | Ast.Reduce (name, e) ->
        let f = compile_expr l e in
        fun rt -> reduce name (f rt)
    | Ast.Spawn { spawn_id; spawn_args } ->
        let compiled = Array.of_list (List.map (compile_expr l) spawn_args) in
        fun rt -> spawn ~site:spawn_id (Array.map (fun f -> f rt) compiled)
  in
  let f = compile stmt in
  fun rt -> try f rt with Returned -> ()
