(** ThreadBlocks: the merged stack frames of many threads, SoA layout.

    One block holds the frames of every thread at one level of the
    computation tree (§4.1).  All instances of each frame field are stored
    contiguously (structure-of-arrays, §5), so the executors replace
    per-thread scalar loads/stores with packed vector accesses and allocate
    or free all frames with a constant number of instructions. *)

type t

val create : ?label:string -> Addr.t -> schema:Schema.t -> isa:Vc_simd.Isa.t -> capacity:int -> t
(** Allocate a block (and its modeled address range) for up to [capacity]
    frames. *)

val schema : t -> Schema.t
val size : t -> int
val capacity : t -> int
val label : t -> string

val clear : t -> unit
(** Reset to empty; keeps storage and addresses (the paper's block-reuse
    optimization). *)

val elem_bytes : t -> int

val field : t -> int -> int array
(** Direct access to a field's column (valid rows are [0..size-1]). *)

val get : t -> field:int -> row:int -> int
val set : t -> field:int -> row:int -> int -> unit

val push : t -> int array -> unit
(** Append a frame (length = #fields).  Raises [Invalid_argument] when
    full — callers grow via {!ensure_room} first. *)

val reserve : t -> int
(** Append an uninitialized frame, returning its row. *)

val truncate : t -> int -> unit
(** Drop rows beyond the given size. *)

val field_addr : t -> field:int -> row:int -> int
(** Modeled address of one element (SoA: column-major). *)

val ensure_room : t -> Addr.t -> extra:int -> t
(** A block with room for [size + extra] frames: the same block when it
    already fits, otherwise a fresh, larger one (geometric growth) with the
    contents copied and a new address range.  The old range is abandoned —
    reallocations are visible to the cache model, as on real hardware. *)

val footprint_bytes : t -> int
(** Modeled bytes of the whole allocation. *)

val copy_row : src:t -> src_row:int -> dst:t -> unit
(** Append row [src_row] of [src] to [dst] (same schema). *)
