type t = { mutable next : int; mutable total : int }

(* Leave low addresses to the compaction tables (Vc_simd.Compact). *)
let base = 0x4000_0000

let create () = { next = base; total = 0 }

let align_up n a = (n + a - 1) / a * a

let alloc t ~bytes =
  let bytes = max bytes 1 in
  let addr = t.next in
  t.next <- align_up (t.next + bytes) 64;
  t.total <- t.total + bytes;
  addr

let allocated_bytes t = t.total
