exception Task_limit_exceeded of int

(* Growable parallel stacks of frames and depths.  Frames live in a Block
   so the spec's accessors apply; the block's rows are the stack slots. *)

let run ?(max_tasks = 200_000_000) ~(spec : Spec.t) ~(machine : Vc_mem.Machine.t) () =
  let m = Measure.create machine in
  let vm = m.Measure.vm in
  let isa = machine.Vc_mem.Machine.isa in
  let nfields = Schema.num_fields spec.Spec.schema in
  let elem = Schema.elem_bytes spec.Spec.schema ~isa in
  let reducers = Spec.make_reducers spec in
  let insns = spec.Spec.insns in
  let wall_start = Unix.gettimeofday () in

  (* The software stack. *)
  let stack = ref (Block.create ~label:"stack" m.Measure.addr ~schema:spec.Spec.schema ~isa ~capacity:1024) in
  let depths = ref (Array.make 1024 0) in
  let push_frame frame depth =
    stack := Block.ensure_room !stack m.Measure.addr ~extra:1;
    if Block.size !stack >= Array.length !depths then begin
      let grown = Array.make (2 * Array.length !depths) 0 in
      Array.blit !depths 0 grown 0 (Array.length !depths);
      depths := grown
    end;
    let row = Block.reserve !stack in
    Array.iteri (fun f v -> Block.set !stack ~field:f ~row v) frame;
    !depths.(row) <- depth;
    (* frame spill: one scalar store per field.  The SoA transformation
       turns exactly these into packed vector stores, so they count as
       vectorizable work in the Table 3 split. *)
    for f = 0 to nfields - 1 do
      Vc_simd.Vm.scalar_store vm ~addr:(Block.field_addr !stack ~field:f ~row) ~bytes:elem
    done;
    Metrics.kernel_ops m.Measure.metrics nfields
  in
  (* Scratch space for the popped frame ("registers") and for children in
     flight; modeled as register traffic, not memory. *)
  let scratch = Block.create ~label:"scratch" m.Measure.addr ~schema:spec.Spec.schema ~isa ~capacity:1 in
  let child_scratch =
    Block.create ~label:"child" m.Measure.addr ~schema:spec.Spec.schema ~isa
      ~capacity:(max 1 spec.Spec.num_spawns)
  in
  List.iter (fun frame -> push_frame frame 0) spec.Spec.roots;
  let tasks = ref 0 in
  while Block.size !stack > 0 do
    incr tasks;
    if !tasks > max_tasks then raise (Task_limit_exceeded max_tasks);
    let top = Block.size !stack - 1 in
    let depth = !depths.(top) in
    (* pop: one scalar load per field + pointer bookkeeping *)
    Block.clear scratch;
    Block.copy_row ~src:!stack ~src_row:top ~dst:scratch;
    for f = 0 to nfields - 1 do
      Vc_simd.Vm.scalar_load vm ~addr:(Block.field_addr !stack ~field:f ~row:top) ~bytes:elem
    done;
    Metrics.kernel_ops m.Measure.metrics nfields;
    Vc_simd.Vm.scalar_ops vm 2;
    Block.truncate !stack top;
    Metrics.tasks_at_level m.Measure.metrics ~depth ~n:1;
    Metrics.live_threads m.Measure.metrics (Block.size !stack + 1);
    Vc_simd.Vm.scalar_ops vm insns.Spec.check_insns;
    Metrics.kernel_ops m.Measure.metrics insns.Spec.check_insns;
    (* the scalar residue executes here too, but stays non-vectorizable
       under the transformation, so it is not kernel work *)
    Vc_simd.Vm.scalar_ops vm insns.Spec.scalar_insns;
    if spec.Spec.is_base scratch 0 then begin
      Metrics.base_at_level m.Measure.metrics ~depth ~n:1;
      Vc_simd.Vm.scalar_ops vm insns.Spec.base_insns;
      Metrics.kernel_ops m.Measure.metrics insns.Spec.base_insns;
      spec.Spec.exec_base reducers scratch 0
    end
    else begin
      Vc_simd.Vm.scalar_ops vm insns.Spec.inductive_insns;
      Metrics.kernel_ops m.Measure.metrics insns.Spec.inductive_insns;
      (* Collect children, then push them in reverse site order so the
         site-0 child is on top: left-to-right depth-first order. *)
      Block.clear child_scratch;
      for site = 0 to spec.Spec.num_spawns - 1 do
        Vc_simd.Vm.scalar_ops vm insns.Spec.spawn_insns;
        Metrics.kernel_ops m.Measure.metrics insns.Spec.spawn_insns;
        ignore (spec.Spec.spawn scratch 0 ~site ~dst:child_scratch : bool)
      done;
      for child = Block.size child_scratch - 1 downto 0 do
        let frame =
          Array.init nfields (fun f -> Block.get child_scratch ~field:f ~row:child)
        in
        push_frame frame (depth + 1)
      done
    end
  done;
  let wall = Unix.gettimeofday () -. wall_start in
  Measure.report m ~benchmark:spec.Spec.name ~strategy:"seq"
    ~reducers:(Vc_lang.Reducer.values reducers) ~wall_seconds:wall
