type row = {
  benchmark : string;
  seq_vect : float;
  seq_nonvect : float;
  vec_vect : float;
  vec_nonvect : float;
  max_speedup : float;
}

let analyze ~(seq : Report.t) ~(vec : Report.t) ~width =
  let total = float_of_int (max 1 seq.Report.scalar_ops) in
  let kernel = float_of_int seq.Report.kernel_ops in
  let seq_vect = kernel /. total in
  let seq_nonvect = 1.0 -. seq_vect in
  let vec_vect = kernel /. float_of_int width /. total in
  let vec_nonvect = float_of_int vec.Report.scalar_ops /. total in
  let denom = vec_vect +. vec_nonvect in
  {
    benchmark = seq.Report.benchmark;
    seq_vect;
    seq_nonvect;
    vec_vect;
    vec_nonvect;
    max_speedup = (if denom <= 0.0 then 0.0 else 1.0 /. denom);
  }

let pp_row fmt r =
  Format.fprintf fmt "%-12s %6.2f %6.2f %8.2f %6.2f %8.2f" r.benchmark r.seq_vect
    r.seq_nonvect r.vec_vect r.vec_nonvect r.max_speedup
