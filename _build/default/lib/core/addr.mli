(** Bump allocator for the modeled address space.

    Blocks and stacks receive disjoint, cache-line-aligned address ranges
    so the cache simulator sees a realistic layout.  Addresses are purely
    virtual: nothing is stored there. *)

type t

val create : unit -> t

val alloc : t -> bytes:int -> int
(** A fresh 64-byte-aligned region of [bytes] bytes; returns its base. *)

val allocated_bytes : t -> int
