(** Amdahl opportunity analysis (paper §6.4, Table 3).

    From the measured sequential and vectorized runs:
    - the sequential instruction stream splits into kernel (vectorizable)
      and task-management (not) instructions;
    - a modeled perfect vectorization shrinks the kernel side by the
      vector width while keeping the transformed code's measured scalar
      side;
    - the ratio bounds the achievable speedup. *)

type row = {
  benchmark : string;
  seq_vect : float;  (** vectorizable fraction of the sequential run *)
  seq_nonvect : float;
  vec_vect : float;  (** kernel fraction after perfect width-x shrink *)
  vec_nonvect : float;  (** measured scalar fraction of the transformed run *)
  max_speedup : float;
}

val analyze : seq:Report.t -> vec:Report.t -> width:int -> row
(** [seq] must be a {!Seq_exec} report (its [kernel_ops]/[scalar_ops]
    carry the split); [vec] a vectorized {!Engine} report. *)

val pp_row : Format.formatter -> row -> unit
