(** Layout description of one Thread stack frame (paper §4.4, §5).

    The rewrite rules insert a [Thread] structure holding the method's
    parameters; a {!Block.t} stores many such frames in structure-of-arrays
    layout.  The lane kind is the benchmark's data type (Table 1) — it
    determines how many SIMD lanes one vector instruction covers and the
    modeled element size in the address trace. *)

type t

val create : lane_kind:Vc_simd.Lane.kind -> string list -> t
(** Field names, in frame order.  Raises [Invalid_argument] on duplicates
    or an empty list. *)

val fields : t -> string array
val num_fields : t -> int
val field_index : t -> string -> int
(** Raises [Not_found]. *)

val lane_kind : t -> Vc_simd.Lane.kind

val elem_bytes : t -> isa:Vc_simd.Isa.t -> int
(** Modeled bytes of one element on the given ISA ([lane_kind] widened to
    the ISA's minimum lane width, as the Phi widens everything to int). *)

val frame_bytes : t -> isa:Vc_simd.Isa.t -> int

val pp : Format.formatter -> t -> unit
