(** Loop distribution and if-conversion of blocked methods (paper §4.1).

    The Fig. 7 rewrite produces a [foreach (Thread t : tb)] whose body is
    an arbitrary statement tree.  The paper notes that "through a
    combination of loop distribution, inlining, if-conversion, and other
    standard compiler transformations, this loop can be transformed into a
    series of dense loops over individual instructions, which then can be
    readily vectorized" — and that the resulting reordering (all threads
    execute step 1, then all execute step 2, ...) is still compatible with
    the parallel semantics of the language.

    This pass performs that transformation:
    - every [if] is {e if-converted}: its condition is evaluated once into
      a fresh per-thread predicate, and the branch bodies execute under
      masks over that predicate;
    - [continue] (the rewritten [return]) becomes a masked kill of the
      thread's implicit {!live} predicate, which every subsequent step's
      mask includes;
    - the statement tree flattens into a sequence of {!step}s — each a
      single masked instruction whose dense loop over the block is
      directly vectorizable;
    - [while] loops cannot be distributed and remain {e residual} (masked,
      per-thread) steps, the part the paper's compiler leaves scalar.

    {!exec_block} executes a distributed method {e step-major} — the
    dense-loop execution order — and the test suite checks it produces
    exactly the thread-major semantics of {!Blocked_interp} on random
    programs, which is the §4.1 reordering-soundness claim. *)

type mask = (string * bool) list
(** Conjunction of predicate-variable tests; the implicit [live] predicate
    is always included.  Empty = always (for live threads). *)

type target = Next | Nexts of int

type step =
  | Pred of { mask : mask; var : string; cond : Vc_lang.Ast.expr }
      (** evaluate [cond] into predicate [var] (if-conversion temp) *)
  | Kill of { mask : mask }  (** rewritten [continue]: clear [live] *)
  | Assign of { mask : mask; var : string; rhs : Vc_lang.Ast.expr }
  | Reduce of { mask : mask; reducer : string; value : Vc_lang.Ast.expr }
  | Enqueue of { mask : mask; target : target; args : Vc_lang.Ast.expr list }
  | Residual of { mask : mask; stmt : Blocked_ast.bstmt }
      (** a [while] loop: stays a per-thread masked statement *)

type t = {
  source : Blocked_ast.bmethod;
  fields : string list;
  steps : step list;  (** includes the initial [isBase] predicate step *)
  base_pred : string;  (** the predicate holding the [isBase] outcome *)
}

val distribute : Blocked_ast.bmethod -> t

val simplify : t -> t
(** Dead-predicate elimination: drop [Pred] steps whose variable no later
    mask reads (branch folding upstream leaves such husks), unless their
    condition can trap.  Semantics-preserving — property-tested against
    {!exec_block}. *)

val vectorizable_steps : t -> int
val residual_steps : t -> int

val pp : Format.formatter -> t -> unit
(** Prints the step sequence as dense vector pseudo-code, e.g.
    [p0[:] <- n < 2], [reduce(result, n[:]) where p0]. *)

(** {1 Step-major execution} *)

type sinks = {
  reduce : string -> int -> unit;
  enqueue : target -> int array -> unit;
}

val exec_block : t -> frames:int array list -> sinks -> unit
(** Execute the distributed method over a block of frames in dense-loop
    order: for each step in sequence, apply it to every thread.  Frames
    are parameter vectors in field order.  Raises
    [Vc_core.Codegen.Runtime_error] on evaluation errors. *)
