type t = {
  label : string;
  schema : Schema.t;
  data : int array array;
  mutable size : int;
  capacity : int;
  base_addr : int;
  elem_bytes : int;
}

let create ?(label = "block") addr ~schema ~isa ~capacity =
  if capacity < 0 then invalid_arg "Block.create: negative capacity";
  let capacity = max capacity 1 in
  let elem_bytes = Schema.elem_bytes schema ~isa in
  let nfields = Schema.num_fields schema in
  let base_addr = Addr.alloc addr ~bytes:(capacity * nfields * elem_bytes) in
  {
    label;
    schema;
    data = Array.init nfields (fun _ -> Array.make capacity 0);
    size = 0;
    capacity;
    base_addr;
    elem_bytes;
  }

let schema t = t.schema
let size t = t.size
let capacity t = t.capacity
let label t = t.label
let clear t = t.size <- 0
let elem_bytes t = t.elem_bytes

let field t i = t.data.(i)

let get t ~field ~row = t.data.(field).(row)
let set t ~field ~row v = t.data.(field).(row) <- v

let push t frame =
  if t.size >= t.capacity then
    invalid_arg (Printf.sprintf "Block.push: %s full (capacity %d)" t.label t.capacity);
  let row = t.size in
  Array.iteri (fun f v -> t.data.(f).(row) <- v) frame;
  t.size <- row + 1

let reserve t =
  if t.size >= t.capacity then
    invalid_arg (Printf.sprintf "Block.reserve: %s full (capacity %d)" t.label t.capacity);
  let row = t.size in
  t.size <- row + 1;
  row

let truncate t n =
  if n < 0 || n > t.size then invalid_arg "Block.truncate";
  t.size <- n

(* SoA: field columns are contiguous, one after another. *)
let field_addr t ~field ~row =
  t.base_addr + (field * t.capacity * t.elem_bytes) + (row * t.elem_bytes)

let ensure_room t addr ~extra =
  let needed = t.size + extra in
  if needed <= t.capacity then t
  else begin
    let capacity = max needed (2 * t.capacity) in
    let fresh =
      {
        label = t.label;
        schema = t.schema;
        data = Array.init (Schema.num_fields t.schema) (fun _ -> Array.make capacity 0);
        size = t.size;
        capacity;
        base_addr =
          Addr.alloc addr ~bytes:(capacity * Schema.num_fields t.schema * t.elem_bytes);
        elem_bytes = t.elem_bytes;
      }
    in
    Array.iteri (fun f col -> Array.blit col 0 fresh.data.(f) 0 t.size) t.data;
    fresh
  end

let footprint_bytes t = t.capacity * Schema.num_fields t.schema * t.elem_bytes

let copy_row ~src ~src_row ~dst =
  let row = reserve dst in
  Array.iteri (fun f col -> dst.data.(f).(row) <- col.(src_row)) src.data
