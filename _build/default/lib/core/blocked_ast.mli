(** The target language of the Fig. 7 rewrite rules.

    A rewritten method body is an ordinary statement tree except that
    [return] has become [Continue] (move on to the block's next thread) and
    each [spawn] has become an enqueue onto the next-level thread block:
    the single [next] block in the breadth-first flavor, the per-site
    [nexts[id]] block in the blocked flavor. *)

type bstmt =
  | BSkip  (** no-op *)
  | Continue  (** rewritten [return] *)
  | BSeq of bstmt * bstmt
  | BAssign of string * Vc_lang.Ast.expr
  | BIf of Vc_lang.Ast.expr * bstmt * bstmt
  | BWhile of Vc_lang.Ast.expr * bstmt
  | BReduce of string * Vc_lang.Ast.expr
  | NextAdd of Vc_lang.Ast.expr list
      (** bfs flavor: [next.add(new Thread(e1, ..., ek))] *)
  | NextsAdd of int * Vc_lang.Ast.expr list
      (** blocked flavor: [nexts[id].add(new Thread(e1, ..., ek))] *)

type flavor = Bfs | Blocked

type bmethod = {
  flavor : flavor;
  bname : string;  (** e.g. [fib_bfs], [fib_blocked] *)
  fields : string list;  (** the Thread struct: one field per parameter *)
  is_base : Vc_lang.Ast.expr;
  base : bstmt;
  inductive : bstmt;
}

type t = {
  source : Vc_lang.Ast.program;
  thread_fields : string list;
  num_spawns : int;
  bfs_method : bmethod;
  blocked_method : bmethod;
}

val pp_bstmt : Format.formatter -> bstmt -> unit

val pp_bmethod : Format.formatter -> bmethod -> unit
(** Renders the method as the paper's pseudo-code (compare Figs. 3 and
    4(b)), including the ThreadBlock plumbing and the Fig. 6 threshold
    dispatch. *)

val pp : Format.formatter -> t -> unit
(** The full transformed program: Thread struct, both methods, and the
    entry function. *)

val to_string : t -> string
