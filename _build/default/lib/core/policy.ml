type strategy = Bfs_only | Hybrid of { max_block : int; reexpand : bool }

let hybrid_for ~target_space ~num_spawns ~reexpand =
  if target_space < 1 then invalid_arg "Policy.hybrid_for: target_space < 1";
  if num_spawns < 1 then invalid_arg "Policy.hybrid_for: num_spawns < 1";
  Hybrid { max_block = max 1 (target_space / num_spawns); reexpand }

let name = function
  | Bfs_only -> "bfs"
  | Hybrid { reexpand = false; _ } -> "noreexp"
  | Hybrid { reexpand = true; _ } -> "reexp"

let describe = function
  | Bfs_only -> "pure breadth-first expansion"
  | Hybrid { max_block; reexpand } ->
      Printf.sprintf "hybrid (max block %d, re-expansion %s)" max_block
        (if reexpand then "on" else "off")
