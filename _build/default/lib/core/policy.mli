(** Execution strategies and the §4.3 threshold rule.

    The paper evaluates three strategies (Table 2):
    - pure breadth-first ({!Bfs_only});
    - hybrid without re-expansion: breadth-first until the block reaches
      [max_block], then blocked depth-first to completion;
    - hybrid with re-expansion (Fig. 6): additionally, any child block that
      falls to or below the re-expansion threshold is handed back to
      breadth-first expansion.

    Both thresholds are set to [T_max / e] where [T_max] is the target
    space (max live threads) and [e] the expansion factor, so one round of
    breadth-first expansion cannot overshoot [T_max]. *)

type strategy =
  | Bfs_only
  | Hybrid of { max_block : int; reexpand : bool }
      (** [max_block] doubles as the re-expansion threshold, per §4.3. *)

val hybrid_for : target_space:int -> num_spawns:int -> reexpand:bool -> strategy
(** The §4.3 rule: [max_block = target_space / num_spawns] (at least 1). *)

val name : strategy -> string
(** "bfs", "noreexp", "reexp" — the Table 2 column names. *)

val describe : strategy -> string
