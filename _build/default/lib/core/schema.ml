type t = { fields : string array; lane_kind : Vc_simd.Lane.kind }

let create ~lane_kind fields =
  if fields = [] then invalid_arg "Schema.create: no fields";
  let rec dup = function
    | [] -> ()
    | f :: rest ->
        if List.mem f rest then
          invalid_arg (Printf.sprintf "Schema.create: duplicate field %S" f)
        else dup rest
  in
  dup fields;
  { fields = Array.of_list fields; lane_kind }

let fields t = t.fields
let num_fields t = Array.length t.fields

let field_index t name =
  let rec go i =
    if i >= Array.length t.fields then raise Not_found
    else if t.fields.(i) = name then i
    else go (i + 1)
  in
  go 0

let lane_kind t = t.lane_kind

let elem_bytes t ~isa = Vc_simd.Lane.bytes (Vc_simd.Isa.effective_kind isa t.lane_kind)

let frame_bytes t ~isa = num_fields t * elem_bytes t ~isa

let pp fmt t =
  Format.fprintf fmt "{%s : %a}"
    (String.concat ", " (Array.to_list t.fields))
    Vc_simd.Lane.pp t.lane_kind
