(** Execution timelines: one event per processed block level.

    Pass a trace to {!Engine.run} to record the scheduler's decisions —
    which phase (breadth-first, blocked depth-first, or cut-off) processed
    which block, at which tree depth, and how the block split into base
    and recursive tasks.  Useful to see re-expansion toggling (§4.3) at
    work; the CLI's [trace] subcommand prints it. *)

type phase =
  | Bfs  (** breadth-first level (including re-expansion) *)
  | Blocked  (** blocked depth-first level *)
  | Cutoff  (** sequentialized subtree (task cut-off) *)

type event = {
  seq : int;  (** event order *)
  phase : phase;
  depth : int;  (** tree depth of the block *)
  size : int;  (** threads in the block *)
  base : int;  (** of which took the base case *)
}

type t

val create : unit -> t

val record : t -> phase:phase -> depth:int -> size:int -> base:int -> unit
(** Called by the engine; appends one event. *)

val clear : t -> unit
(** Drop all events (the engine clears between a warm-up pass and the
    measured pass). *)

val events : t -> event array
val length : t -> int

val phase_counts : t -> (phase * int) list
(** Events per phase, in declaration order (zero-count phases omitted). *)

val phase_name : phase -> string

val pp : ?limit:int -> Format.formatter -> t -> unit
(** Timeline with one row per event (first [limit], default 40, plus a
    summary): sequence, phase, depth, and a log2-scaled size bar. *)
