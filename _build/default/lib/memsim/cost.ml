let cycles vm hierarchy =
  Vc_simd.Vm.issue_cycles vm +. Hierarchy.penalty_cycles hierarchy

let cpi vm hierarchy =
  let ops = Vc_simd.Stats.total_ops (Vc_simd.Vm.stats vm) in
  if ops = 0 then 0.0 else cycles vm hierarchy /. float_of_int ops

let speedup ~baseline_cycles ~cycles =
  if cycles <= 0.0 then 0.0 else baseline_cycles /. cycles
