type config = { size_bytes : int; ways : int; line_bytes : int }

type t = {
  config : config;
  sets : int;
  set_mask : int;
  tags : int array;  (* sets * ways; -1 = invalid *)
  stamps : int array;  (* LRU timestamps, parallel to [tags] *)
  mutable clock : int;
  mutable accesses : int;
  mutable misses : int;
}

let config t = t.config

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let create config =
  if config.size_bytes <= 0 || config.ways <= 0 || config.line_bytes <= 0 then
    invalid_arg "Cache.create: sizes must be positive";
  if config.size_bytes mod (config.ways * config.line_bytes) <> 0 then
    invalid_arg "Cache.create: size must be a multiple of ways * line";
  let sets = config.size_bytes / (config.ways * config.line_bytes) in
  if not (is_power_of_two sets) then
    invalid_arg (Printf.sprintf "Cache.create: set count %d not a power of two" sets);
  if not (is_power_of_two config.line_bytes) then
    invalid_arg "Cache.create: line size must be a power of two";
  {
    config;
    sets;
    set_mask = sets - 1;
    tags = Array.make (sets * config.ways) (-1);
    stamps = Array.make (sets * config.ways) 0;
    clock = 0;
    accesses = 0;
    misses = 0;
  }

let access t ~addr =
  let line = addr / t.config.line_bytes in
  let set = line land t.set_mask in
  let tag = line lsr 0 in
  (* The full line number doubles as the tag; distinct lines mapping to the
     same set always have distinct line numbers. *)
  let base = set * t.config.ways in
  t.accesses <- t.accesses + 1;
  t.clock <- t.clock + 1;
  let hit = ref false in
  let victim = ref base in
  let oldest = ref max_int in
  (let i = ref base in
   let stop = base + t.config.ways in
   while (not !hit) && !i < stop do
     if t.tags.(!i) = tag then begin
       hit := true;
       t.stamps.(!i) <- t.clock
     end
     else begin
       if t.stamps.(!i) < !oldest || t.tags.(!i) = -1 then begin
         (* invalid lines are preferred victims: give them stamp -1 *)
         let stamp = if t.tags.(!i) = -1 then -1 else t.stamps.(!i) in
         if stamp < !oldest then begin
           oldest := stamp;
           victim := !i
         end
       end;
       incr i
     end
   done);
  if not !hit then begin
    t.misses <- t.misses + 1;
    t.tags.(!victim) <- tag;
    t.stamps.(!victim) <- t.clock
  end;
  !hit

let access_range t ~addr ~bytes =
  let bytes = max bytes 1 in
  let first = addr / t.config.line_bytes in
  let last = (addr + bytes - 1) / t.config.line_bytes in
  let misses = ref 0 in
  for line = first to last do
    if not (access t ~addr:(line * t.config.line_bytes)) then incr misses
  done;
  !misses

let accesses t = t.accesses
let misses t = t.misses

let miss_rate t =
  if t.accesses = 0 then 0.0 else float_of_int t.misses /. float_of_int t.accesses

let reset_counters t =
  t.accesses <- 0;
  t.misses <- 0

let clear t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.stamps 0 (Array.length t.stamps) 0;
  t.clock <- 0;
  reset_counters t

let lines t = t.sets * t.config.ways

let resident_lines t =
  Array.fold_left (fun acc tag -> if tag >= 0 then acc + 1 else acc) 0 t.tags
