(** A set-associative LRU cache.

    One level of the simulated memory hierarchy.  Fed with the executors'
    actual address streams, it reproduces the paper's cache-miss figures
    (Figs. 11 and 13): the miss-rate cliffs appear exactly when a thread
    block's working set outgrows a level's capacity. *)

type t

type config = {
  size_bytes : int;  (** total capacity *)
  ways : int;  (** associativity *)
  line_bytes : int;  (** cache-line size (64 on both paper platforms) *)
}

val config : t -> config

val create : config -> t
(** Raises [Invalid_argument] unless sizes are positive, the line and way
    counts divide evenly, and the set count is a power of two. *)

val access : t -> addr:int -> bool
(** Access the line containing [addr]; returns [true] on hit.  Updates LRU
    state and counters.  Call once per line touched (see {!access_range}). *)

val access_range : t -> addr:int -> bytes:int -> int
(** Access every line overlapped by [addr, addr+bytes); returns the number
    of misses. *)

val accesses : t -> int
val misses : t -> int

val miss_rate : t -> float
(** [misses / accesses]; 0 when never accessed. *)

val reset_counters : t -> unit
(** Zero the counters, keeping cache contents (used to measure a region of
    interest after warm-up). *)

val clear : t -> unit
(** Invalidate all lines and zero the counters. *)

val lines : t -> int
(** Total number of lines (capacity / line size). *)

val resident_lines : t -> int
(** Number of currently valid lines — for inspecting fill state in tests. *)
