lib/memsim/cache.ml: Array Printf
