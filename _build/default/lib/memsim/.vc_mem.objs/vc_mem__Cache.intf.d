lib/memsim/cache.mli:
