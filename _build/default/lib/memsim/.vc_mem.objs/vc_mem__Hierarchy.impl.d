lib/memsim/hierarchy.ml: Cache List
