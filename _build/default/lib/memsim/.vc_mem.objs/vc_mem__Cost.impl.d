lib/memsim/cost.ml: Hierarchy Vc_simd
