lib/memsim/machine.ml: Cache Format Hierarchy List Vc_simd
