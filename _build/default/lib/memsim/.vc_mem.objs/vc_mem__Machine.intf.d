lib/memsim/machine.mli: Format Hierarchy Vc_simd
