lib/memsim/cost.mli: Hierarchy Vc_simd
