lib/memsim/hierarchy.mli: Cache
