(** A simulated platform: vector ISA + memory hierarchy + capacity limit.

    The two presets model the paper's evaluation platforms (§6.1).  The
    [max_live_threads] limit plays the role of physical memory: a pure
    breadth-first execution whose widest level exceeds it "runs out of
    memory", reproducing the OOM entries of Table 2 at this reproduction's
    scaled workload sizes (see DESIGN.md §2). *)

type t = {
  name : string;
  isa : Vc_simd.Isa.t;
  hierarchy : unit -> Hierarchy.t;  (** fresh hierarchy per run *)
  max_live_threads : int;
}

val xeon_e5 : t
val xeon_phi : t

val knl : t
(** A forward-looking platform for the §8 width-scaling study: AVX512BW
    (char-level 512-bit vectors), a 1 MB L2, and a stronger scalar
    pipeline than the first Phi.  Not part of the paper's evaluation;
    used only by the ablation harness. *)

val all : t list

val find : string -> t
(** Look up by [name] ("e5" / "phi").  Raises [Not_found]. *)

val pp : Format.formatter -> t -> unit
