(** The cycle model combining instruction issue and memory penalties.

    [cycles = issue_cycles(vm) + penalty_cycles(hierarchy)].  Speedups in
    the reproduced tables/figures are ratios of these modeled cycles; CPI
    (Fig. 13's right axis) is cycles per instruction. *)

val cycles : Vc_simd.Vm.t -> Hierarchy.t -> float

val cpi : Vc_simd.Vm.t -> Hierarchy.t -> float
(** Cycles per (scalar or vector) instruction; 0 if nothing was issued. *)

val speedup : baseline_cycles:float -> cycles:float -> float
(** [baseline / cycles]; infinity guarded to 0-safe. *)
