type t = {
  name : string;
  isa : Vc_simd.Isa.t;
  hierarchy : unit -> Hierarchy.t;
  max_live_threads : int;
}

let xeon_e5 =
  {
    name = "e5";
    isa = Vc_simd.Isa.sse42;
    hierarchy = Hierarchy.xeon_e5;
    max_live_threads = 1 lsl 26;
  }

let xeon_phi =
  {
    name = "phi";
    isa = Vc_simd.Isa.avx512;
    hierarchy = Hierarchy.xeon_phi;
    max_live_threads = 1 lsl 21;
  }

let knl =
  {
    name = "knl";
    isa = Vc_simd.Isa.avx512bw;
    hierarchy =
      (fun () ->
        Hierarchy.create
          [
            {
              Hierarchy.label = "L1d";
              cache =
                Cache.create { Cache.size_bytes = 32 * 1024; ways = 8; line_bytes = 64 };
              miss_penalty = 12.0;
            };
            {
              Hierarchy.label = "L2";
              cache =
                Cache.create
                  { Cache.size_bytes = 1024 * 1024; ways = 16; line_bytes = 64 };
              miss_penalty = 250.0;
            };
          ]);
    max_live_threads = 1 lsl 23;
  }

let all = [ xeon_e5; xeon_phi; knl ]

let find name =
  match List.find_opt (fun m -> m.name = name) all with
  | Some m -> m
  | None -> raise Not_found

let pp fmt t =
  Format.fprintf fmt "%s [%a, %d-thread limit]" t.name Vc_simd.Isa.pp t.isa
    t.max_live_threads
